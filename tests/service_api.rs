//! The MatchService contract, end to end:
//!
//! * `query` over an upserted store returns **exactly** the hits of
//!   `match_pairs_indexed` on the equivalent relation — at every rule
//!   version (before and after `swap_rules`);
//! * after `swap_rules`, answers are identical to a fresh service built
//!   with the new rules over the same records (proptest, 1/2/8 threads);
//! * `explain`'s per-atom pass/fail agrees with `lhs_matches` for every
//!   atom of every key, and its verdict with `query`;
//! * `Record` field errors are typed and suggest the nearest schema
//!   attribute.

use matchrules::data::dirty::{generate_dirty, NoiseConfig};
use matchrules::data::relation::{Relation, Tuple};
use matchrules::engine::{EngineBuilder, Preset};
use matchrules::service::{MatchService, Record, RecordId, ServiceError};
use proptest::prelude::*;

const THREAD_SWEEP: [usize; 3] = [1, 2, 8];

/// A genuinely different rule set for the extended pair: MDs 1, 6 and 7
/// of the §6 setting are dropped, so the deduced RCKs change.
const SWAPPED_RULES: &str = "\
    credit[email] = billing[email] -> credit[FN,MN,LN] <=> billing[FN,MN,LN]\n\
    credit[tel] = billing[phn] -> \
    credit[street,city,county,state,zip] <=> billing[street,city,county,state,zip]\n\
    credit[zip] = billing[zip] -> credit[city,county,state] <=> billing[city,county,state]\n\
    credit[LN] ~d billing[LN] /\\ credit[tel] = billing[phn] /\\ credit[FN] ~d billing[FN] -> \
    credit[FN,MN,LN,street,city,county,state,zip,tel,email,gender] <=> \
    billing[FN,MN,LN,street,city,county,state,zip,phn,email,gender]\n";

/// Builds a service over the extended preset and upserts every billing
/// tuple (ids become `RecordId`s), returning the service plus the credit
/// (probe-side) relation.
fn extended_service(persons: usize, seed: u64, threads: usize) -> (MatchService, Relation) {
    let shape = Preset::Extended.paper_setting();
    let data = generate_dirty(
        &shape.pair,
        &shape.target,
        persons,
        &NoiseConfig { seed, ..Default::default() },
    );
    let engine = Preset::Extended
        .builder()
        .top_k(5)
        .threads(threads)
        .statistics_from(&data.credit, &data.billing)
        .build()
        .expect("preset engine builds");
    let mut service = MatchService::new(engine);
    for t in data.billing.tuples() {
        let record =
            Record::from_values(service.store_schema().clone(), t.values().to_vec()).unwrap();
        assert!(!service.upsert(RecordId(t.id()), &record).unwrap(), "ids are fresh");
    }
    assert_eq!(service.len(), data.billing.len());
    (service, data.credit)
}

/// `query` per probe must return exactly the `match_pairs_indexed` hits
/// on the service's snapshot relation.
fn assert_query_equals_batch(service: &MatchService, credit: &Relation) {
    let snapshot = service.snapshot();
    let report = service.engine().match_pairs_indexed(credit, &snapshot).expect("batch run");
    for (l, probe_tuple) in credit.tuples().iter().enumerate() {
        let probe =
            Record::from_values(service.probe_schema().clone(), probe_tuple.values().to_vec())
                .unwrap();
        let response = service.query(&probe).unwrap();
        let expected: Vec<(u64, usize)> =
            report.pairs().iter().filter(|p| p.left == l).map(|p| (p.right_id, p.key)).collect();
        let got: Vec<(u64, usize)> = response.hits.iter().map(|h| (h.id.0, h.key)).collect();
        assert_eq!(got, expected, "probe {l} diverged from the batch path");
        assert!(response.candidates >= response.hits.len());
        assert_eq!(response.version, service.version());
    }
}

#[test]
fn query_equals_batch_at_every_rule_version() {
    let (mut service, credit) = extended_service(60, 0xA11CE, 1);
    assert_eq!(service.version().number(), 1);
    assert_query_equals_batch(&service, &credit);

    let v2 = service.swap_rules(SWAPPED_RULES).expect("swap compiles");
    assert_eq!(v2.number(), 2);
    assert_eq!(service.version(), v2);
    assert_eq!(service.plan().sigma().len(), 4, "the swapped rule set has 4 MDs");
    assert_query_equals_batch(&service, &credit);

    // Swapping back to the original (programmatic) rules keeps working
    // and keeps bumping.
    let original = Preset::Extended.paper_setting().sigma;
    let v3 = service.swap_rules_with(original).expect("swap back");
    assert_eq!(v3.number(), 3);
    assert_query_equals_batch(&service, &credit);
}

#[test]
fn failed_swap_leaves_the_service_untouched() {
    let (mut service, credit) = extended_service(20, 7, 1);
    let before: Vec<_> = credit
        .tuples()
        .iter()
        .map(|t| {
            let probe =
                Record::from_values(service.probe_schema().clone(), t.values().to_vec()).unwrap();
            service.query(&probe).unwrap()
        })
        .collect();
    // Unknown attribute: the recompile fails, the old version keeps
    // serving, byte for byte.
    let err = service.swap_rules("credit[nope] = billing[email] -> credit[FN] <=> billing[FN]");
    assert!(matches!(err, Err(ServiceError::Engine(_))), "{err:?}");
    assert_eq!(service.version().number(), 1);
    for (t, expect) in credit.tuples().iter().zip(before) {
        let probe =
            Record::from_values(service.probe_schema().clone(), t.values().to_vec()).unwrap();
        assert_eq!(service.query(&probe).unwrap(), expect);
    }
}

#[test]
fn swap_with_foreign_operator_ids_fails_the_compile() {
    use matchrules::core::dependency::{IdentPair, MatchingDependency, SimilarityAtom};
    use matchrules::core::operators::OperatorId;
    let (mut service, _credit) = extended_service(10, 3, 1);
    let pair = service.plan().pair().clone();
    let l = pair.left().attr("email").unwrap();
    let r = pair.right().attr("email").unwrap();
    // An MD whose atom carries an operator id no table this size holds —
    // the signature of interning against a foreign (larger) table.
    let foreign = MatchingDependency::new(
        &pair,
        vec![SimilarityAtom::new(l, r, OperatorId(99))],
        vec![IdentPair::new(pair.left().attr("FN").unwrap(), pair.right().attr("FN").unwrap())],
    )
    .unwrap();
    let err = service.swap_rules_with(vec![foreign]);
    assert!(matches!(err, Err(ServiceError::Engine(_))), "{err:?}");
    assert!(err.unwrap_err().to_string().contains("operator table"));
    assert_eq!(service.version().number(), 1, "the failed swap changed nothing");
}

#[test]
fn upsert_remove_get_roundtrip() {
    let (mut service, credit) = extended_service(20, 99, 1);
    let id = RecordId(service.snapshot().tuples()[0].id());
    let stored = service.get(id).expect("live record");
    assert_eq!(stored.values(), service.snapshot().tuples()[0].values());

    // Replacing a record moves it to the freshest position and changes
    // the answers to whatever the new values imply.
    let blank = Record::from_values(
        service.store_schema().clone(),
        vec![matchrules::data::value::Value::Null; service.store_schema().arity()],
    )
    .unwrap();
    let len_before = service.len();
    assert!(service.upsert(id, &blank).unwrap(), "an existing id reports replacement");
    assert_eq!(service.len(), len_before, "a replacement does not grow the store");
    let null_record = service.get(id).expect("still live");
    assert!(null_record.values().iter().all(|v| v.is_null()));
    // An all-null record matches nothing.
    for t in credit.tuples() {
        let probe =
            Record::from_values(service.probe_schema().clone(), t.values().to_vec()).unwrap();
        assert!(service.query(&probe).unwrap().hits.iter().all(|h| h.id != id));
    }

    service.remove(id).expect("live record removes");
    assert!(!service.contains(id));
    assert!(service.get(id).is_none());
    assert!(matches!(
        service.remove(id),
        Err(ServiceError::UnknownRecord { id: gone }) if gone == id
    ));
    // Query equivalence still holds with tombstones in the store.
    assert_query_equals_batch(&service, &credit);
    // Compaction reclaims tombstones without changing answers.
    let before_stats = service.stats();
    assert!(before_stats.tombstones >= 2, "replace + remove left tombstones");
    service.compact().unwrap();
    assert_eq!(service.stats().tombstones, 0);
    assert_query_equals_batch(&service, &credit);
}

#[test]
fn explain_agrees_with_query_and_lhs_matches() {
    let (service, credit) = extended_service(30, 0xE1, 1);
    let plan = service.plan();
    let ops = service.engine().runtime();
    let snapshot = service.snapshot();
    let mut explained = 0usize;
    for probe_tuple in credit.tuples().iter().take(10) {
        let probe =
            Record::from_values(service.probe_schema().clone(), probe_tuple.values().to_vec())
                .unwrap();
        let hits = service.query(&probe).unwrap().hits;
        for stored in snapshot.tuples().iter().take(15) {
            let id = RecordId(stored.id());
            let why = service.explain(&probe, id).unwrap();
            assert_eq!(why.matched, hits.iter().any(|h| h.id == id), "verdict vs query");
            assert_eq!(why.version, service.version());
            assert_eq!(why.keys.len(), plan.rcks().len());
            let probe_t = Tuple::new(0, probe.values().to_vec());
            for (key, kx) in plan.rcks().iter().zip(&why.keys) {
                assert_eq!(
                    kx.matched,
                    ops.lhs_matches(key.atoms(), &probe_t, stored),
                    "key verdict vs lhs_matches"
                );
                assert_eq!(kx.atoms.len(), key.atoms().len());
                for (atom, ax) in key.atoms().iter().zip(&kx.atoms) {
                    assert_eq!(
                        ax.passed,
                        ops.atom_matches(atom, &probe_t, stored),
                        "atom pass/fail vs atom_matches ({} {} {})",
                        ax.left,
                        ax.op,
                        ax.right,
                    );
                    // Edit atoms carry their own evidence: matched iff
                    // the exact distance fits the bound.
                    if let (Some(d), Some(b)) = (ax.distance, ax.bound) {
                        assert_eq!(ax.passed, d <= b);
                    }
                }
            }
            // The fired key matches query provenance, and a match comes
            // with its deduction path (the preset keys are deduced).
            if let Some(hit) = hits.iter().find(|h| h.id == id) {
                assert_eq!(why.fired_key, Some(hit.key));
                assert!(!why.deduction.is_empty(), "deduced keys explain their deduction");
                assert!(why.to_string().contains("MATCH via key"));
            }
            explained += 1;
        }
    }
    assert!(explained > 0);
    // Unknown ids are typed errors.
    let probe =
        Record::from_values(service.probe_schema().clone(), credit.tuples()[0].values().to_vec())
            .unwrap();
    assert!(matches!(
        service.explain(&probe, RecordId(u64::MAX)),
        Err(ServiceError::UnknownRecord { .. })
    ));
}

#[test]
fn schema_mismatch_is_a_typed_error() {
    let (mut service, _credit) = extended_service(10, 5, 1);
    // A record built against the probe schema cannot be stored (the
    // extended schemas have different arities), and vice versa.
    let probe_shaped = Record::from_values(
        service.probe_schema().clone(),
        vec![matchrules::data::value::Value::Null; service.probe_schema().arity()],
    )
    .unwrap();
    assert!(matches!(
        service.upsert(RecordId(10_000), &probe_shaped),
        Err(ServiceError::SchemaMismatch { .. })
    ));
    let store_shaped = Record::from_values(
        service.store_schema().clone(),
        vec![matchrules::data::value::Value::Null; service.store_schema().arity()],
    )
    .unwrap();
    assert!(matches!(service.query(&store_shaped), Err(ServiceError::SchemaMismatch { .. })));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// After `swap_rules`, the long-lived service answers byte-identically
    /// to a fresh service compiled with the new rules over the same
    /// records — hits, candidate counts and filter stats — at 1, 2 and 8
    /// threads (the post-swap index is a clean rebuild, so even the work
    /// accounting must line up).
    #[test]
    fn post_swap_equals_fresh_service(seed in 0u64..100_000, persons in 10usize..32) {
        let shape = Preset::Extended.paper_setting();
        let data = generate_dirty(
            &shape.pair,
            &shape.target,
            persons,
            &NoiseConfig { seed, ..Default::default() },
        );
        for threads in THREAD_SWEEP {
            // Long-lived service: built on the original rules, then
            // hot-swapped.
            let engine = Preset::Extended.builder().top_k(5).threads(threads).build().unwrap();
            let mut swapped = MatchService::new(engine);
            for t in data.billing.tuples() {
                let record = Record::from_values(
                    swapped.store_schema().clone(),
                    t.values().to_vec(),
                ).unwrap();
                swapped.upsert(RecordId(t.id()), &record).unwrap();
            }
            swapped.swap_rules(SWAPPED_RULES).unwrap();
            prop_assert_eq!(swapped.version().number(), 2);

            // Fresh service: compiled with the new rules from scratch
            // (independent construction path), same records, same order.
            let fresh_engine = EngineBuilder::from_parts(
                shape.pair.clone(),
                matchrules::core::operators::OperatorTable::new(),
                Vec::new(),
                shape.target.clone(),
            )
            .md_text(SWAPPED_RULES)
            .top_k(5)
            .threads(threads)
            .build()
            .unwrap();
            let mut fresh = MatchService::new(fresh_engine);
            for t in data.billing.tuples() {
                let record = Record::from_values(
                    fresh.store_schema().clone(),
                    t.values().to_vec(),
                ).unwrap();
                fresh.upsert(RecordId(t.id()), &record).unwrap();
            }

            for t in data.credit.tuples() {
                let probe_a = Record::from_values(
                    swapped.probe_schema().clone(), t.values().to_vec()).unwrap();
                let probe_b = Record::from_values(
                    fresh.probe_schema().clone(), t.values().to_vec()).unwrap();
                let a = swapped.query(&probe_a).unwrap();
                let b = fresh.query(&probe_b).unwrap();
                prop_assert_eq!(&a.hits, &b.hits,
                    "hits diverge at {} threads (seed {})", threads, seed);
                prop_assert_eq!(a.candidates, b.candidates);
                prop_assert_eq!(a.stats, b.stats);
            }
        }
    }

    /// Query answers are exactly the batch answers at both rule versions,
    /// whatever the data (the plain-test version pins one instance; this
    /// sweeps seeds).
    #[test]
    fn query_equals_batch_prop(seed in 0u64..100_000, persons in 8usize..24) {
        let (mut service, credit) = extended_service(persons, seed, 2);
        assert_query_equals_batch(&service, &credit);
        service.swap_rules(SWAPPED_RULES).unwrap();
        assert_query_equals_batch(&service, &credit);
    }
}
