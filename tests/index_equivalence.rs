//! The MatchIndex contract, end to end through the engine:
//!
//! * `match_pairs_indexed` finds exactly the pairs the sorted-neighborhood
//!   path finds on the paper presets (same `MatchedPair`s — ids, key
//!   provenance and all — once both are put in `(left, right)` order,
//!   which is the indexed path's native order);
//! * `MatchIndex::query` after `insert` of tuple *t* returns exactly the
//!   pairs the batch path reports for *t*, and `remove` then `query`
//!   never returns the removed id — at 1, 2 and 8 threads (the
//!   determinism harness of `parallel_determinism.rs`, pointed at the
//!   index).

use matchrules::data::dirty::{generate_dirty, NoiseConfig};
use matchrules::data::fig1;
use matchrules::data::relation::{Relation, Tuple};
use matchrules::engine::{ExecConfig, MatchedPair, Preset};
use proptest::prelude::*;

const THREAD_SWEEP: [usize; 3] = [1, 2, 8];

/// Sorts a report's pairs into the indexed path's native order.
fn by_position(mut pairs: Vec<MatchedPair>) -> Vec<MatchedPair> {
    pairs.sort_by_key(|p| (p.left, p.right));
    pairs
}

#[test]
fn indexed_matches_equal_windowed_matches_on_example11() {
    let engine = Preset::Example11.builder().build().expect("preset engine builds");
    let inst = fig1::instance_for_pair(engine.plan().pair());
    let windowed = engine.match_pairs(inst.left(), inst.right()).expect("windowed run");
    let indexed = engine.match_pairs_indexed(inst.left(), inst.right()).expect("indexed run");
    assert_eq!(
        indexed.pairs().to_vec(),
        by_position(windowed.pairs().to_vec()),
        "indexed and windowed matches must be identical on Fig. 1"
    );
    assert!(!indexed.is_empty());
    // The indexed path reports its own stages.
    let names: Vec<&str> = indexed.stages().iter().map(|s| s.name).collect();
    assert_eq!(names, vec!["index", "probe", "prep", "match"]);
}

#[test]
fn indexed_matches_equal_windowed_matches_on_extended_catalog() {
    // An instance where the sorted-neighborhood path has full recall
    // (pinned by seed: every true pair shares a window under some pass),
    // so the two paths must agree byte for byte. On noisier instances the
    // index finds strictly *more* — see
    // `indexed_matches_superset_windowed_matches` below.
    let shape = Preset::Extended.paper_setting();
    let data = generate_dirty(
        &shape.pair,
        &shape.target,
        150,
        &NoiseConfig { seed: 31, ..Default::default() },
    );
    let engine = Preset::Extended
        .builder()
        .top_k(5)
        .statistics_from(&data.credit, &data.billing)
        .build()
        .expect("preset engine builds");
    let windowed = engine.match_pairs(&data.credit, &data.billing).expect("windowed run");
    let indexed = engine.match_pairs_indexed(&data.credit, &data.billing).expect("indexed run");
    assert_eq!(
        indexed.pairs().to_vec(),
        by_position(windowed.pairs().to_vec()),
        "indexed and windowed matches must be identical on the synthetic catalog"
    );
    assert!(
        indexed.candidates() < windowed.candidates(),
        "the index must examine fewer candidates ({} vs {})",
        indexed.candidates(),
        windowed.candidates()
    );
}

#[test]
fn indexed_matches_are_a_superset_of_windowed_matches() {
    // The general contract: the index retrieves every pair its keys
    // accept, while a fixed-size window can miss pairs whose sort-key
    // attributes are corrupted in every pass — so indexed ⊇ windowed,
    // with identical decisions (key provenance included) on shared pairs,
    // and still strictly fewer candidates examined.
    let shape = Preset::Extended.paper_setting();
    let data = generate_dirty(
        &shape.pair,
        &shape.target,
        250,
        &NoiseConfig { seed: 0xBEEF, ..Default::default() },
    );
    let engine = Preset::Extended
        .builder()
        .top_k(5)
        .statistics_from(&data.credit, &data.billing)
        .build()
        .expect("preset engine builds");
    let windowed = engine.match_pairs(&data.credit, &data.billing).expect("windowed run");
    let indexed = engine.match_pairs_indexed(&data.credit, &data.billing).expect("indexed run");
    for pair in windowed.pairs() {
        assert!(
            indexed.pairs().contains(pair),
            "windowed pair {pair:?} missing from the indexed run"
        );
    }
    assert!(indexed.len() >= windowed.len());
    assert!(indexed.candidates() < windowed.candidates());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Serving contract: after inserting tuple *t*, a point query returns
    /// exactly the pairs the batch (exhaustive) path reports for *t* —
    /// same partners, same key provenance — however many threads built
    /// the index.
    #[test]
    fn query_after_insert_equals_batch(seed in 0u64..100_000, persons in 10usize..40) {
        let shape = Preset::Extended.paper_setting();
        let data = generate_dirty(
            &shape.pair,
            &shape.target,
            persons,
            &NoiseConfig { seed, ..Default::default() },
        );
        let engine = Preset::Extended
            .builder()
            .top_k(5)
            .statistics_from(&data.credit, &data.billing)
            .build()
            .expect("preset engine builds");
        // Ground truth: the exhaustive batch run over the full pair.
        let batch = engine
            .with_exec(ExecConfig::serial())
            .match_all(&data.credit, &data.billing)
            .expect("batch run");

        // Hold out the last few billing tuples and insert them after the
        // build — queries must not care how a tuple entered the index.
        let held_out = 3.min(data.billing.len());
        let split = data.billing.len() - held_out;
        let mut base = Relation::new(data.billing.schema().clone());
        for t in &data.billing.tuples()[..split] {
            base.push(Tuple::new(t.id(), t.values().to_vec()));
        }

        for threads in THREAD_SWEEP {
            let engine = engine.with_exec(ExecConfig::fixed(threads));
            let mut index = engine.index(&base).expect("index builds");
            for t in &data.billing.tuples()[split..] {
                index.insert(Tuple::new(t.id(), t.values().to_vec())).expect("insert");
            }
            for (l, probe) in data.credit.tuples().iter().enumerate() {
                let outcome = index.query(probe);
                let mut expected: Vec<(u64, usize)> = batch
                    .pairs()
                    .iter()
                    .filter(|p| p.left == l)
                    .map(|p| (p.right_id, p.key))
                    .collect();
                expected.sort_unstable();
                let mut got: Vec<(u64, usize)> =
                    outcome.hits.iter().map(|h| (h.id, h.key)).collect();
                got.sort_unstable();
                prop_assert_eq!(
                    got, expected,
                    "probe {} diverged from the batch path at {} threads (seed {})",
                    l, threads, seed
                );
            }
        }
    }

    /// `remove` then `query` never returns the removed id, and everything
    /// else keeps matching exactly as before.
    #[test]
    fn removed_ids_never_come_back(seed in 0u64..100_000, persons in 10usize..40) {
        let shape = Preset::Extended.paper_setting();
        let data = generate_dirty(
            &shape.pair,
            &shape.target,
            persons,
            &NoiseConfig { seed, ..Default::default() },
        );
        let engine = Preset::Extended
            .builder()
            .top_k(5)
            .statistics_from(&data.credit, &data.billing)
            .build()
            .expect("preset engine builds");
        for threads in THREAD_SWEEP {
            let engine = engine.with_exec(ExecConfig::fixed(threads));
            let mut index = engine.index(&data.billing).expect("index builds");
            // Remove the partner of the first matching probe (if any pair
            // matches at all on this instance).
            let victim = data.credit.tuples().iter().find_map(|probe| {
                index.query(probe).hits.first().map(|h| h.id)
            });
            let Some(victim) = victim else { continue };
            let before: Vec<Vec<_>> = data
                .credit
                .tuples()
                .iter()
                .map(|p| index.query(p).hits)
                .collect();
            index.remove(victim).expect("remove");
            for (probe, before_hits) in data.credit.tuples().iter().zip(before) {
                let after = index.query(probe).hits;
                prop_assert!(
                    after.iter().all(|h| h.id != victim),
                    "removed id {} still returned at {} threads (seed {})",
                    victim, threads, seed
                );
                let expect: Vec<_> =
                    before_hits.into_iter().filter(|h| h.id != victim).collect();
                prop_assert_eq!(after, expect);
            }
        }
    }
}
