//! The IndexableAtom contract, per anchor kind, end to end through the
//! engine: for each of the new `AtomIndex` variants — derived-key
//! buckets (`≈sx`, `≈num`), element postings (`≈tok`, `≈qg`) and
//! char-bag prefix buckets (`≈jw`) — a `MatchIndex` built over
//! arbitrary proptest-generated strings must answer every point query
//! with **exactly** the hit set the exhaustive scan path reports
//! (superset-of-scan + no-false-positives in one assertion), at 1, 2
//! and 8 build threads, and must keep doing so across
//! insert → remove → query. A combined jaro-winkler + soundex + token
//! plan must compile with zero scan-fallback keys.

use matchrules::core::schema::Schema;
use matchrules::data::relation::{Relation, Tuple};
use matchrules::data::Value;
use matchrules::engine::{EngineBuilder, ExecConfig, MatchEngine};
use proptest::prelude::*;
use proptest::{collection, TestCaseError};
use std::sync::Arc;

const THREAD_SWEEP: [usize; 3] = [1, 2, 8];

/// A single-attribute engine whose only RCK is `a[v] op b[v]`.
fn single_op_engine(op: &str) -> MatchEngine {
    let a = Schema::text("a", &["v"]).expect("schema a");
    let b = Schema::text("b", &["v"]).expect("schema b");
    EngineBuilder::new()
        .schemas(a, b)
        .md_text(&format!("a[v] {op} b[v] -> a[v] <=> b[v]"))
        .target(&["v"], &["v"])
        .build()
        .expect("engine builds")
}

/// Ids are positions + 1; `Relation::push_strs` would fold `""` into
/// NULL, and we want real empty strings to reach the anchors.
fn relation_of(schema: &Arc<Schema>, values: &[String]) -> Relation {
    let mut rel = Relation::new(schema.clone());
    for (i, v) in values.iter().enumerate() {
        rel.push(Tuple::new(i as u64 + 1, vec![Value::str(v)]));
    }
    rel
}

/// The scan path's answer for probe `l`: partner ids from the
/// exhaustive (every pair evaluated) batch run, sorted.
fn scan_hits(batch: &matchrules::engine::MatchReport, l: usize) -> Vec<(u64, usize)> {
    let mut hits: Vec<(u64, usize)> =
        batch.pairs().iter().filter(|p| p.left == l).map(|p| (p.right_id, p.key)).collect();
    hits.sort_unstable();
    hits
}

/// The core contract, shared by every per-operator property below:
/// index hit set == scan hit set for every probe at every thread
/// count, with the last right-hand tuple arriving via `insert` and a
/// removed partner never coming back.
fn assert_index_equals_scan(
    op: &str,
    left: &[String],
    right: &[String],
) -> std::result::Result<(), TestCaseError> {
    let engine = single_op_engine(op);
    prop_assert!(
        engine.plan().fully_indexable(),
        "{op} plan unexpectedly carries a scan-fallback key"
    );
    let lrel = relation_of(engine.plan().pair().left(), left);
    let rrel = relation_of(engine.plan().pair().right(), right);
    let batch = engine.with_exec(ExecConfig::serial()).match_all(&lrel, &rrel).expect("batch run");

    // Hold the last right tuple out of the build and insert it after —
    // queries must not care how a tuple entered the index.
    let split = rrel.len().saturating_sub(1);
    let mut base = Relation::new(rrel.schema().clone());
    for t in &rrel.tuples()[..split] {
        base.push(Tuple::new(t.id(), t.values().to_vec()));
    }

    for threads in THREAD_SWEEP {
        let engine = engine.with_exec(ExecConfig::fixed(threads));
        let mut index = engine.index(&base).expect("index builds");
        prop_assert_eq!(index.stats().scan_keys, 0, "{} key fell back to scanning", op);
        for t in &rrel.tuples()[split..] {
            index.insert(Tuple::new(t.id(), t.values().to_vec())).expect("insert");
        }
        for (l, probe) in lrel.tuples().iter().enumerate() {
            let mut got: Vec<(u64, usize)> =
                index.query(probe).hits.iter().map(|h| (h.id, h.key)).collect();
            got.sort_unstable();
            prop_assert_eq!(
                got,
                scan_hits(&batch, l),
                "{} probe {} diverged from the scan path at {} threads",
                op,
                l,
                threads
            );
        }

        // Remove the partner of the first matching probe; it must never
        // come back, and everything else must keep matching as before.
        let victim = lrel.tuples().iter().find_map(|p| index.query(p).hits.first().map(|h| h.id));
        let Some(victim) = victim else { continue };
        let before: Vec<Vec<_>> = lrel.tuples().iter().map(|p| index.query(p).hits).collect();
        index.remove(victim).expect("remove");
        for (probe, before_hits) in lrel.tuples().iter().zip(before) {
            let after = index.query(probe).hits;
            prop_assert!(
                after.iter().all(|h| h.id != victim),
                "{} still returns removed id {} at {} threads",
                op,
                victim,
                threads
            );
            let expect: Vec<_> = before_hits.into_iter().filter(|h| h.id != victim).collect();
            prop_assert_eq!(after, expect);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Derived-key anchor (soundex codes): index == scan on arbitrary
    /// short alphabetic-ish strings, empty strings included.
    #[test]
    fn soundex_index_equals_scan(
        left in collection::vec("[a-zA-Z]{0,10}", 1..20),
        right in collection::vec("[a-zA-Z]{0,10}", 1..20),
    ) {
        assert_index_equals_scan("~sx", &left, &right)?;
    }

    /// Derived-key anchor (digit projection): strings mixing digits and
    /// separators, so several raw forms share one derived key.
    #[test]
    fn digits_index_equals_scan(
        left in collection::vec("[0-9a -]{0,8}", 1..20),
        right in collection::vec("[0-9a -]{0,8}", 1..20),
    ) {
        assert_index_equals_scan("~num", &left, &right)?;
    }

    /// Element-posting anchor (distinct tokens + Jaccard ratio
    /// prefilter): multi-word values with repeated words.
    #[test]
    fn token_index_equals_scan(
        left in collection::vec("[a-c ]{0,12}", 1..20),
        right in collection::vec("[a-c ]{0,12}", 1..20),
    ) {
        assert_index_equals_scan("~tok", &left, &right)?;
    }

    /// Element-posting anchor (padded q-gram multiset + Dice ratio
    /// prefilter).
    #[test]
    fn qgram_index_equals_scan(
        left in collection::vec("[a-d]{0,8}", 1..20),
        right in collection::vec("[a-d]{0,8}", 1..20),
    ) {
        assert_index_equals_scan("~qg", &left, &right)?;
    }

    /// Char-bag prefix anchor (the Jaro–Winkler bound): a narrow
    /// alphabet maximizes near-misses right at the 0.9 threshold.
    #[test]
    fn jaro_winkler_index_equals_scan(
        left in collection::vec("[a-e]{0,9}", 1..20),
        right in collection::vec("[a-e]{0,9}", 1..20),
    ) {
        assert_index_equals_scan("~jw", &left, &right)?;
    }
}

/// The acceptance scenario: a plan whose RCKs use jaro-winkler,
/// soundex *and* token operators compiles every key onto anchors —
/// zero scan fallbacks — and answers byte-identically to the scan path
/// on a names-schema instance.
#[test]
fn combined_name_plan_has_no_scan_keys_and_matches_scan() {
    let a = Schema::text("a", &["first", "last", "city"]).expect("schema a");
    let b = Schema::text("b", &["first", "last", "city"]).expect("schema b");
    let engine = EngineBuilder::new()
        .schemas(a, b)
        .md_text(
            "a[first] ~jw b[first] /\\ a[last] ~sx b[last] -> a[first,last] <=> b[first,last]\n\
             a[last] = b[last] /\\ a[city] ~tok b[city] -> a[last,city] <=> b[last,city]\n",
        )
        .target(&["first", "last", "city"], &["first", "last", "city"])
        .build()
        .expect("engine builds");
    assert!(engine.plan().fully_indexable(), "every RCK must land on an anchor");

    let rows: &[(&str, &str, &str)] = &[
        ("robert", "smith", "new york"),
        ("roberta", "smyth", "york new"),
        ("bob", "smith", "boston"),
        ("umberto", "schmidt", "new york city"),
        ("robert", "smit", "new york"),
        ("", "", ""),
    ];
    let mk = |schema: &Arc<Schema>| {
        let mut rel = Relation::new(schema.clone());
        for (i, (f, l, c)) in rows.iter().enumerate() {
            rel.push(Tuple::new(i as u64 + 1, vec![Value::str(f), Value::str(l), Value::str(c)]));
        }
        rel
    };
    let lrel = mk(engine.plan().pair().left());
    let rrel = mk(engine.plan().pair().right());

    let index = engine.index(&rrel).expect("index builds");
    let stats = index.stats();
    assert_eq!(stats.scan_keys, 0, "no key may fall back to scanning: {stats:?}");
    assert!(stats.derived_anchors >= 1, "soundex must land on a derived-key anchor");
    assert!(stats.token_anchors >= 1, "tokens must land on an element anchor");
    assert!(stats.bag_anchors >= 1, "jaro-winkler must land on a char-bag anchor");

    let batch = engine.with_exec(ExecConfig::serial()).match_all(&lrel, &rrel).expect("batch");
    let mut matched_any = false;
    for (l, probe) in lrel.tuples().iter().enumerate() {
        let mut got: Vec<(u64, usize)> =
            index.query(probe).hits.iter().map(|h| (h.id, h.key)).collect();
        got.sort_unstable();
        matched_any |= !got.is_empty();
        assert_eq!(got, scan_hits(&batch, l), "probe {l} diverged from the scan path");
    }
    assert!(matched_any, "the instance must exercise at least one match");
}
