//! Property-based tests (proptest) for the cross-crate invariants:
//! similarity axioms, closure soundness against the executable dynamic
//! semantics, findRCKs minimality/completeness, and parser round-trips.

use matchrules::core::cost::CostModel;
use matchrules::core::deduction::deduces;
use matchrules::core::dependency::{IdentPair, MatchingDependency, SimilarityAtom};
use matchrules::core::operators::OperatorTable;
use matchrules::core::parser::parse_md;
use matchrules::core::rck::{find_rcks, minimize};
use matchrules::core::relative_key::{RelativeKey, Target};
use matchrules::core::schema::{Schema, SchemaPair};
use matchrules::data::enforce::{enforce, is_stable, satisfies};
use matchrules::data::eval::{paper_registry, RuntimeOps};
use matchrules::data::mdgen::{generate, MdGenConfig};
use matchrules::data::relation::{InstancePair, Relation, Tuple};
use matchrules::data::value::Value;
use matchrules::simdist::ops::{OpRegistry, SimilarityOp};
use proptest::prelude::*;
use std::sync::Arc;

// ---------------------------------------------------------------------
// Similarity-operator generic axioms (§2.1) on arbitrary inputs.
// ---------------------------------------------------------------------

fn standard_ops() -> Vec<Arc<dyn SimilarityOp>> {
    let reg = OpRegistry::standard();
    reg.names().iter().map(|n| reg.get(n).unwrap().clone()).collect()
}

proptest! {
    #[test]
    fn operators_are_reflexive(s in ".{0,24}") {
        for op in standard_ops() {
            prop_assert!(op.matches(&s, &s), "{} not reflexive on {s:?}", op.name());
        }
    }

    #[test]
    fn operators_are_symmetric(a in ".{0,16}", b in ".{0,16}") {
        for op in standard_ops() {
            prop_assert_eq!(
                op.matches(&a, &b),
                op.matches(&b, &a),
                "{} not symmetric on {:?}/{:?}", op.name(), &a, &b
            );
        }
    }

    #[test]
    fn equality_implies_similarity(a in ".{0,16}") {
        let b = a.clone();
        for op in standard_ops() {
            prop_assert!(op.matches(&a, &b), "{} rejects equal values", op.name());
        }
    }

    #[test]
    fn similarity_scores_in_unit_interval(a in ".{0,16}", b in ".{0,16}") {
        for op in standard_ops() {
            let s = op.similarity(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s), "{} score {s}", op.name());
        }
    }

    #[test]
    fn edit_distance_triangle(a in "[a-c]{0,8}", b in "[a-c]{0,8}", c in "[a-c]{0,8}") {
        use matchrules::simdist::edit::levenshtein;
        let ab = levenshtein(&a, &b);
        let bc = levenshtein(&b, &c);
        let ac = levenshtein(&a, &c);
        prop_assert!(ac <= ab + bc, "triangle violated: {ac} > {ab} + {bc}");
    }

    #[test]
    fn damerau_is_at_most_levenshtein(a in "[a-d]{0,10}", b in "[a-d]{0,10}") {
        use matchrules::simdist::edit::{damerau_levenshtein, levenshtein};
        prop_assert!(damerau_levenshtein(&a, &b) <= levenshtein(&a, &b));
    }
}

// ---------------------------------------------------------------------
// Deduction: monotonicity, self-deduction, soundness against the chase.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every MD of a generated Σ deduces itself, and deduction is
    /// monotone under enlarging Σ.
    #[test]
    fn deduction_reflexive_and_monotone(seed in 0u64..5000, card in 2usize..20) {
        let setting = generate(&MdGenConfig::fig8(card, 4, seed));
        for phi in &setting.sigma {
            prop_assert!(deduces(&setting.sigma, phi));
        }
        let half = &setting.sigma[..setting.sigma.len() / 2];
        for phi in half {
            prop_assert!(deduces(half, phi));
            prop_assert!(deduces(&setting.sigma, phi), "monotonicity violated");
        }
    }

    /// Augmenting the LHS of a deduced MD keeps it deduced (Lemma 3.1).
    #[test]
    fn deduction_closed_under_augmentation(seed in 0u64..5000, card in 2usize..16) {
        let setting = generate(&MdGenConfig::fig8(card, 4, seed));
        let phi = &setting.sigma[0];
        let mut lhs = phi.lhs().to_vec();
        lhs.push(SimilarityAtom::eq(0, 0));
        let stronger =
            MatchingDependency::new(&setting.pair, lhs, phi.rhs().to_vec()).unwrap();
        prop_assert!(deduces(&setting.sigma, &stronger));
    }
}

/// Builds a small random instance pair over schemas (R1(a0..), R2(b0..))
/// with values drawn from a tiny alphabet so equalities actually occur.
fn tiny_instance(pair: &SchemaPair, values: &[u8], rows: usize) -> InstancePair {
    let arity_l = pair.left().arity();
    let arity_r = pair.right().arity();
    let mut left = Relation::new(pair.left().clone());
    let mut right = Relation::new(pair.right().clone());
    let mut k = 0usize;
    let mut next = || {
        let v = values[k % values.len()];
        k += 1;
        Value::str(format!("v{v}"))
    };
    for i in 0..rows {
        left.push(Tuple::new(i as u64, (0..arity_l).map(|_| next()).collect()));
        right.push(Tuple::new(i as u64, (0..arity_r).map(|_| next()).collect()));
    }
    InstancePair::new(pair.clone(), left, right)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Soundness of MDClosure w.r.t. the dynamic semantics: with
    /// equality-only MDs (where enforcement preserves every LHS), any
    /// deduced MD holds on (D, enforce(D)) for arbitrary instances.
    #[test]
    fn deduced_mds_hold_on_stable_instances(
        seed in 0u64..2000,
        card in 1usize..8,
        values in proptest::collection::vec(0u8..3, 8..40),
    ) {
        let mut cfg = MdGenConfig::fig8(card, 3, seed);
        cfg.arity = 5;
        cfg.sim_ops = 0; // equality-only Σ
        let setting = generate(&cfg);
        let ops = RuntimeOps::resolve(&setting.ops, &paper_registry()).unwrap();
        let d = tiny_instance(&setting.pair, &values, 3);
        let outcome = enforce(&d, &setting.sigma, &ops);
        prop_assert!(is_stable(&outcome.result, &setting.sigma, &ops));

        // Candidate MDs: the trivial key and every single-pair projection.
        let mut candidates = vec![setting.target.trivial_key().to_md(&setting.target)];
        for i in 0..3usize {
            candidates.push(
                MatchingDependency::new(
                    &setting.pair,
                    vec![SimilarityAtom::eq(i, i)],
                    vec![IdentPair::new((i + 1) % 3, (i + 1) % 3)],
                )
                .unwrap(),
            );
        }
        for phi in &candidates {
            if deduces(&setting.sigma, phi) {
                prop_assert!(
                    satisfies(&d, &outcome.result, phi, &ops),
                    "deduced MD violated on a stable instance: {phi:?}"
                );
            }
        }
    }

    /// The chase is idempotent: enforcing on a stable instance changes
    /// nothing.
    #[test]
    fn chase_is_idempotent(
        seed in 0u64..2000,
        card in 1usize..8,
        values in proptest::collection::vec(0u8..3, 8..40),
    ) {
        let mut cfg = MdGenConfig::fig8(card, 3, seed);
        cfg.arity = 5;
        cfg.sim_ops = 0;
        let setting = generate(&cfg);
        let ops = RuntimeOps::resolve(&setting.ops, &paper_registry()).unwrap();
        let d = tiny_instance(&setting.pair, &values, 3);
        let first = enforce(&d, &setting.sigma, &ops);
        let second = enforce(&first.result, &setting.sigma, &ops);
        prop_assert_eq!(second.merges, 0);
    }
}

// ---------------------------------------------------------------------
// findRCKs: minimality, completeness, antichain.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every key returned by findRCKs deduces the target and is minimal;
    /// Γ is an antichain; a complete Γ satisfies Proposition 5.1.
    #[test]
    fn find_rcks_invariants(seed in 0u64..2000, card in 1usize..24) {
        let setting = generate(&MdGenConfig::fig8(card, 5, seed));
        let mut cost = CostModel::uniform();
        let outcome = find_rcks(&setting.sigma, &setting.target, 64, &mut cost);
        prop_assert!(!outcome.keys.is_empty());
        for key in &outcome.keys {
            prop_assert!(deduces(&setting.sigma, &key.to_md(&setting.target)));
            for atom in key.atoms() {
                let sub = key.without(atom);
                prop_assert!(
                    sub.is_empty() || !deduces(&setting.sigma, &sub.to_md(&setting.target))
                );
            }
        }
        for (i, a) in outcome.keys.iter().enumerate() {
            for (j, b) in outcome.keys.iter().enumerate() {
                if i != j {
                    prop_assert!(!a.covers(b), "Γ is not an antichain");
                }
            }
        }
        if outcome.complete {
            for key in &outcome.keys {
                for phi in &setting.sigma {
                    let applied = key.apply(phi);
                    prop_assert!(
                        outcome.keys.iter().any(|k| k.covers(&applied)),
                        "Proposition 5.1 violated"
                    );
                }
            }
        }
    }

    /// minimize is sound (result still deduces) and produces a subset of
    /// the input key.
    #[test]
    fn minimize_soundness(seed in 0u64..2000, card in 1usize..16) {
        let setting = generate(&MdGenConfig::fig8(card, 5, seed));
        let cost = CostModel::uniform();
        let trivial = setting.target.trivial_key();
        let minimized = minimize(trivial.clone(), &setting.sigma, &setting.target, &cost);
        prop_assert!(deduces(&setting.sigma, &minimized.to_md(&setting.target)));
        prop_assert!(minimized.covers(&trivial), "minimize must not invent atoms");
    }
}

// ---------------------------------------------------------------------
// RelativeKey algebra.
// ---------------------------------------------------------------------

fn arb_key() -> impl Strategy<Value = RelativeKey> {
    proptest::collection::vec((0usize..4, 0usize..4, 0u16..3), 1..6).prop_map(|atoms| {
        RelativeKey::new(
            atoms
                .into_iter()
                .map(|(l, r, op)| SimilarityAtom::new(l, r, matchrules::core::OperatorId(op)))
                .collect(),
        )
    })
}

proptest! {
    #[test]
    fn covers_is_a_partial_order(a in arb_key(), b in arb_key(), c in arb_key()) {
        prop_assert!(a.covers(&a), "reflexive");
        if a.covers(&b) && b.covers(&c) {
            prop_assert!(a.covers(&c), "transitive");
        }
        if a.covers(&b) && b.covers(&a) {
            prop_assert_eq!(&a, &b, "antisymmetric");
        }
    }

    #[test]
    fn without_shrinks_by_one(a in arb_key()) {
        for atom in a.atoms() {
            let sub = a.without(atom);
            prop_assert_eq!(sub.len(), a.len() - 1);
            prop_assert!(sub.covers(&a));
        }
    }
}

// ---------------------------------------------------------------------
// Parser round-trip on generated MDs.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn parser_roundtrips_generated_mds(seed in 0u64..5000, card in 1usize..12) {
        let setting = generate(&MdGenConfig::fig8(card, 4, seed));
        let mut ops = setting.ops.clone();
        for md in &setting.sigma {
            let text = md.display(&setting.pair, &ops).to_string();
            let reparsed = parse_md(&text, &setting.pair, &mut ops).unwrap();
            prop_assert_eq!(md, &reparsed, "round-trip failed for {}", text);
        }
    }
}

// ---------------------------------------------------------------------
// Union-find invariants.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn union_find_partitions(
        n in 1usize..40,
        unions in proptest::collection::vec((0usize..40, 0usize..40), 0..60),
    ) {
        use matchrules::data::unionfind::UnionFind;
        let mut uf = UnionFind::new(n);
        for (a, b) in unions {
            let (a, b) = (a % n, b % n);
            uf.union(a, b);
            prop_assert!(uf.same(a, b));
        }
        let groups = uf.groups();
        let total: usize = groups.iter().map(Vec::len).sum();
        prop_assert_eq!(total, n);
        prop_assert_eq!(groups.len(), uf.class_count());
    }
}

// ---------------------------------------------------------------------
// Closure over hand-built chains: a = chain of k MDs reaches the end.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn chained_mds_deduce_transitively(k in 1usize..12) {
        let names: Vec<String> = (0..=k).map(|i| format!("a{i}")).collect();
        let schema = Arc::new(
            Schema::text("R", &names.iter().map(String::as_str).collect::<Vec<_>>()).unwrap(),
        );
        let pair = SchemaPair::reflexive(schema);
        let sigma: Vec<MatchingDependency> = (0..k)
            .map(|i| {
                MatchingDependency::new(
                    &pair,
                    vec![SimilarityAtom::eq(i, i)],
                    vec![IdentPair::new(i + 1, i + 1)],
                )
                .unwrap()
            })
            .collect();
        let phi = MatchingDependency::new(
            &pair,
            vec![SimilarityAtom::eq(0, 0)],
            vec![IdentPair::new(k, k)],
        )
        .unwrap();
        prop_assert!(deduces(&sigma, &phi));
        // And the reverse direction is NOT deducible.
        let rev = MatchingDependency::new(
            &pair,
            vec![SimilarityAtom::eq(k, k)],
            vec![IdentPair::new(0, 0)],
        )
        .unwrap();
        prop_assert!(k == 0 || !deduces(&sigma, &rev));
        let _ = OperatorTable::new();
        let _ = Target::new(&pair, vec![0], vec![0]).unwrap();
    }
}
