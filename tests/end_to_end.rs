//! End-to-end pipeline tests on generated dirty data: MDs → RCKs →
//! matchers → metrics, plus the blocking/windowing quality gates.

use matchrules::core::paper;
use matchrules::data::dirty::{generate_dirty, NoiseConfig};
use matchrules::data::eval::{paper_registry, RuntimeOps};
use matchrules::matcher::blocking::block_candidates;
use matchrules::matcher::fellegi_sunter::{rck_comparison_vector, FsConfig, FsMatcher};
use matchrules::matcher::key::KeyMatcher;
use matchrules::matcher::metrics::{evaluate_pairs, BlockingQuality};
use matchrules::matcher::pipeline::{
    manual_block_key, rck_block_key, rck_sort_keys, standard_sort_keys, top_rcks,
};
use matchrules::matcher::rules::hernandez_stolfo_25;
use matchrules::matcher::sorted_neighborhood::{sorted_neighborhood, SnConfig};
use matchrules::matcher::windowing::multi_pass_window;

const K: usize = 400;

fn workload() -> (paper::PaperSetting, matchrules::data::DirtyData, RuntimeOps) {
    let setting = paper::extended();
    let data = generate_dirty(&setting, K, &NoiseConfig { seed: 0xE2E, ..Default::default() });
    let ops = RuntimeOps::resolve(&setting.ops, &paper_registry()).unwrap();
    (setting, data, ops)
}

/// The full Exp-3 pipeline hits paper-grade quality: SNrck precision ≥ 0.95
/// and recall ≥ 0.7, beating the 25-rule baseline on F1.
#[test]
fn sn_pipeline_quality_gates() {
    let (setting, data, ops) = workload();
    let rcks = top_rcks(&setting, &data, 5);
    assert!(!rcks.is_empty());
    let cfg = SnConfig { window: 10, keys: standard_sort_keys(&setting) };

    let rck_matcher = KeyMatcher::new(rcks.iter(), &ops);
    let rck_out = sorted_neighborhood(&data.credit, &data.billing, &rck_matcher, &cfg);
    let rck_q = evaluate_pairs(&rck_out.pairs, &data.truth);

    let rules = hernandez_stolfo_25(&setting);
    let base_matcher = KeyMatcher::new(rules.iter(), &ops);
    let base_out = sorted_neighborhood(&data.credit, &data.billing, &base_matcher, &cfg);
    let base_q = evaluate_pairs(&base_out.pairs, &data.truth);

    assert!(rck_q.precision() >= 0.95, "SNrck precision {}", rck_q.precision());
    assert!(rck_q.recall() >= 0.70, "SNrck recall {}", rck_q.recall());
    assert!(rck_q.f1() > base_q.f1(), "{} vs {}", rck_q.f1(), base_q.f1());
}

/// The full Exp-2 pipeline: FSrck recall ≥ 0.85 at precision ≥ 0.6 with
/// the default posterior threshold.
#[test]
fn fs_pipeline_quality_gates() {
    let (setting, data, ops) = workload();
    let candidates =
        multi_pass_window(&data.credit, &data.billing, &standard_sort_keys(&setting), 10);
    let rcks = top_rcks(&setting, &data, 5);
    let fs = FsMatcher::fit(
        rck_comparison_vector(&rcks),
        &data.credit,
        &data.billing,
        &candidates,
        &ops,
        &FsConfig::default(),
    );
    let pairs = fs.classify(&data.credit, &data.billing, &candidates, &ops);
    let q = evaluate_pairs(&pairs, &data.truth);
    assert!(q.recall() >= 0.85, "recall {}", q.recall());
    assert!(q.precision() >= 0.6, "precision {}", q.precision());
}

/// Exp-4 blocking: the RCK key's PC beats the manual key's at comparable
/// RR, and both reduce the space by > 99%.
#[test]
fn blocking_quality_gates() {
    let (setting, data, _ops) = workload();
    let rcks = top_rcks(&setting, &data, 5);
    let rck_q = BlockingQuality::from_candidates(
        block_candidates(&data.credit, &data.billing, &rck_block_key(&setting, &rcks)),
        &data.truth,
    );
    let manual_q = BlockingQuality::from_candidates(
        block_candidates(&data.credit, &data.billing, &manual_block_key(&setting)),
        &data.truth,
    );
    assert!(rck_q.pairs_completeness() > manual_q.pairs_completeness());
    assert!(rck_q.reduction_ratio() > 0.99);
    assert!(manual_q.reduction_ratio() > 0.99);
}

/// Exp-4 windowing: RCK sort keys dominate the manual key's PC.
#[test]
fn windowing_quality_gates() {
    let (setting, data, _ops) = workload();
    let rcks = top_rcks(&setting, &data, 5);
    let rck_q = BlockingQuality::from_candidates(
        multi_pass_window(&data.credit, &data.billing, &rck_sort_keys(&setting, &rcks), 10),
        &data.truth,
    );
    let manual_q = BlockingQuality::from_candidates(
        multi_pass_window(&data.credit, &data.billing, &[manual_block_key(&setting)], 10),
        &data.truth,
    );
    assert!(rck_q.pairs_completeness() > manual_q.pairs_completeness());
    assert!(rck_q.reduction_ratio() > 0.9);
}

/// Determinism: the whole pipeline is reproducible from the seed.
#[test]
fn pipeline_is_deterministic() {
    let run = || {
        let (setting, data, ops) = workload();
        let rcks = top_rcks(&setting, &data, 5);
        let cfg = SnConfig { window: 10, keys: standard_sort_keys(&setting) };
        let matcher = KeyMatcher::new(rcks.iter(), &ops);
        let out = sorted_neighborhood(&data.credit, &data.billing, &matcher, &cfg);
        let mut pairs = out.pairs;
        pairs.sort_unstable();
        pairs
    };
    assert_eq!(run(), run());
}

/// Scaling the workload preserves the SNrck ≥ SN ordering (the "less
/// sensitive to K" claim, in miniature).
#[test]
fn ordering_stable_across_sizes() {
    for (k, seed) in [(150usize, 7u64), (500, 8)] {
        let setting = paper::extended();
        let data = generate_dirty(&setting, k, &NoiseConfig { seed, ..Default::default() });
        let ops = RuntimeOps::resolve(&setting.ops, &paper_registry()).unwrap();
        let cfg = SnConfig { window: 10, keys: standard_sort_keys(&setting) };
        let rcks = top_rcks(&setting, &data, 5);
        let rck_q = evaluate_pairs(
            &sorted_neighborhood(&data.credit, &data.billing, &KeyMatcher::new(rcks.iter(), &ops), &cfg)
                .pairs,
            &data.truth,
        );
        let rules = hernandez_stolfo_25(&setting);
        let base_q = evaluate_pairs(
            &sorted_neighborhood(&data.credit, &data.billing, &KeyMatcher::new(rules.iter(), &ops), &cfg)
                .pairs,
            &data.truth,
        );
        assert!(rck_q.precision() > base_q.precision(), "K={k}");
    }
}
