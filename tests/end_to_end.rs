//! End-to-end pipeline tests on generated dirty data: MDs → RCKs →
//! matchers → metrics, plus the blocking/windowing quality gates — all
//! driven through the compiled engine plan.

use matchrules::data::dirty::{generate_dirty, NoiseConfig};
use matchrules::data::DirtyData;
use matchrules::engine::preset::{manual_block_key, standard_sort_keys};
use matchrules::engine::{MatchEngine, Preset};
use matchrules::matcher::blocking::block_candidates;
use matchrules::matcher::fellegi_sunter::{rck_comparison_vector, FsConfig, FsMatcher};
use matchrules::matcher::key::KeyMatcher;
use matchrules::matcher::metrics::{evaluate_pairs, BlockingQuality};
use matchrules::matcher::rules::hernandez_stolfo_25;
use matchrules::matcher::sorted_neighborhood::{sorted_neighborhood, SnConfig};
use matchrules::matcher::windowing::multi_pass_window;

const K: usize = 400;

fn workload_seeded(k: usize, seed: u64) -> (MatchEngine, DirtyData) {
    // Shapes only: the preset's schema pair and target, no compiled plan.
    let shape = Preset::Extended.paper_setting();
    let data =
        generate_dirty(&shape.pair, &shape.target, k, &NoiseConfig { seed, ..Default::default() });
    let engine = Preset::Extended
        .builder()
        .top_k(5)
        .statistics_from(&data.credit, &data.billing)
        .build()
        .unwrap();
    (engine, data)
}

fn workload() -> (MatchEngine, DirtyData) {
    workload_seeded(K, 0xE2E)
}

/// The full Exp-3 pipeline hits paper-grade quality: SNrck precision ≥ 0.95
/// and recall ≥ 0.7, beating the 25-rule baseline on F1.
#[test]
fn sn_pipeline_quality_gates() {
    let (engine, data) = workload();
    let plan = engine.plan();
    let ops = engine.runtime();
    assert!(!plan.rcks().is_empty());
    let cfg = SnConfig { window: 10, keys: standard_sort_keys(plan.pair()) };

    let rck_matcher = KeyMatcher::new(plan.rcks().iter(), ops);
    let rck_out = sorted_neighborhood(&data.credit, &data.billing, &rck_matcher, &cfg);
    let rck_q = evaluate_pairs(&rck_out.pairs, &data.truth);

    let dl = plan.ops().get("≈d").unwrap();
    let rules = hernandez_stolfo_25(plan.pair(), dl);
    let base_matcher = KeyMatcher::new(rules.iter(), ops);
    let base_out = sorted_neighborhood(&data.credit, &data.billing, &base_matcher, &cfg);
    let base_q = evaluate_pairs(&base_out.pairs, &data.truth);

    assert!(rck_q.precision() >= 0.95, "SNrck precision {}", rck_q.precision());
    assert!(rck_q.recall() >= 0.70, "SNrck recall {}", rck_q.recall());
    assert!(rck_q.f1() > base_q.f1(), "{} vs {}", rck_q.f1(), base_q.f1());
}

/// The full Exp-2 pipeline: FSrck recall ≥ 0.85 at precision ≥ 0.6 with
/// the default posterior threshold.
#[test]
fn fs_pipeline_quality_gates() {
    let (engine, data) = workload();
    let plan = engine.plan();
    let candidates =
        multi_pass_window(&data.credit, &data.billing, &standard_sort_keys(plan.pair()), 10);
    let fs = FsMatcher::fit(
        rck_comparison_vector(plan.rcks()),
        &data.credit,
        &data.billing,
        &candidates,
        engine.runtime(),
        &FsConfig::default(),
    )
    .expect("EM fit on windowed candidates");
    let pairs = fs.classify(&data.credit, &data.billing, &candidates, engine.runtime());
    let q = evaluate_pairs(&pairs, &data.truth);
    assert!(q.recall() >= 0.85, "recall {}", q.recall());
    assert!(q.precision() >= 0.6, "precision {}", q.precision());
}

/// Exp-4 blocking: the plan's RCK key's PC beats the manual key's at
/// comparable RR, and both reduce the space by > 99%.
#[test]
fn blocking_quality_gates() {
    let (engine, data) = workload();
    let plan = engine.plan();
    let rck_q = BlockingQuality::from_candidates(
        block_candidates(&data.credit, &data.billing, plan.block_key().unwrap()),
        &data.truth,
    );
    let manual_q = BlockingQuality::from_candidates(
        block_candidates(&data.credit, &data.billing, &manual_block_key(plan.pair())),
        &data.truth,
    );
    assert!(rck_q.pairs_completeness() > manual_q.pairs_completeness());
    assert!(rck_q.reduction_ratio() > 0.99);
    assert!(manual_q.reduction_ratio() > 0.99);
}

/// Exp-4 windowing: the engine's RCK sort keys dominate the manual key's
/// PC.
#[test]
fn windowing_quality_gates() {
    let (engine, data) = workload();
    let plan = engine.plan();
    let rck_q = BlockingQuality::from_candidates(
        engine.window(&data.credit, &data.billing).unwrap(),
        &data.truth,
    );
    let manual_q = BlockingQuality::from_candidates(
        multi_pass_window(&data.credit, &data.billing, &[manual_block_key(plan.pair())], 10),
        &data.truth,
    );
    assert!(rck_q.pairs_completeness() > manual_q.pairs_completeness());
    assert!(rck_q.reduction_ratio() > 0.9);
}

/// Determinism: the whole engine pipeline is reproducible from the seed.
#[test]
fn pipeline_is_deterministic() {
    let run = || {
        let (engine, data) = workload();
        let report = engine.match_pairs(&data.credit, &data.billing).unwrap();
        let mut pairs = report.index_pairs();
        pairs.sort_unstable();
        pairs
    };
    assert_eq!(run(), run());
}

/// Scaling the workload preserves the SNrck ≥ SN ordering (the "less
/// sensitive to K" claim, in miniature).
#[test]
fn ordering_stable_across_sizes() {
    for (k, seed) in [(150usize, 7u64), (500, 8)] {
        let (engine, data) = workload_seeded(k, seed);
        let plan = engine.plan();
        let ops = engine.runtime();
        let cfg = SnConfig { window: 10, keys: standard_sort_keys(plan.pair()) };
        let rck_q = evaluate_pairs(
            &sorted_neighborhood(
                &data.credit,
                &data.billing,
                &KeyMatcher::new(plan.rcks().iter(), ops),
                &cfg,
            )
            .pairs,
            &data.truth,
        );
        let dl = plan.ops().get("≈d").unwrap();
        let rules = hernandez_stolfo_25(plan.pair(), dl);
        let base_q = evaluate_pairs(
            &sorted_neighborhood(
                &data.credit,
                &data.billing,
                &KeyMatcher::new(rules.iter(), ops),
                &cfg,
            )
            .pairs,
            &data.truth,
        );
        assert!(rck_q.precision() > base_q.precision(), "K={k}");
    }
}
