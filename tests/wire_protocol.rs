//! Wire-protocol properties (proptest over seeded generators):
//!
//! * every `Request` / `Response` round-trips `decode(encode(x)) == x`,
//!   framed and unframed;
//! * decoding is **total**: every strict prefix of a valid body, every
//!   truncated frame, and arbitrary garbage produce a typed
//!   [`ProtocolError`] — never a panic, never an allocation driven by a
//!   hostile count;
//! * oversized frames are rejected on both sides before allocation;
//! * framing survives an `io::Read` that delivers 1, 2 or 8 bytes per
//!   call (split reads across the length prefix and the body).

use matchrules::server::wire::{
    read_frame, read_request, read_response, write_frame, write_request, write_response,
    ProtocolError, Request, Response, WireHit, WireQuery, WireRanked, WireRefinement, WireSchema,
    WireScoredHit, WireStats, MAX_FRAME,
};
use proptest::prelude::*;
use std::io::Read;

// ---------------------------------------------------------------------
// Seeded message generator (splitmix64 — deterministic per seed)
// ---------------------------------------------------------------------

struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }

    /// Strings mix ASCII, multi-byte UTF-8 and the empty string so the
    /// length-prefixed encoding is exercised on byte length != char
    /// count.
    fn string(&mut self) -> String {
        const PALETTE: &[&str] =
            &["", "a", "Z9", "é", "µ-unit", "名前", "O'Hara \"quoted\"", "\n\t"];
        let mut s = String::new();
        for _ in 0..self.below(4) {
            s.push_str(PALETTE[self.below(PALETTE.len() as u64) as usize]);
        }
        s
    }

    fn value(&mut self) -> Option<String> {
        if self.below(4) == 0 {
            None
        } else {
            Some(self.string())
        }
    }

    fn values(&mut self) -> Vec<Option<String>> {
        (0..self.below(5)).map(|_| self.value()).collect()
    }

    fn request(&mut self) -> Request {
        match self.below(10) {
            0 => Request::Query { values: self.values() },
            1 => {
                Request::QueryBatch { probes: (0..self.below(4)).map(|_| self.values()).collect() }
            }
            2 => Request::UpsertBatch {
                items: (0..self.below(4)).map(|_| (self.next(), self.values())).collect(),
            },
            3 => Request::RemoveBatch { ids: (0..self.below(6)).map(|_| self.next()).collect() },
            4 => Request::Explain { values: self.values(), id: self.next() },
            5 => Request::SwapRules { md_text: self.string() },
            6 => Request::QueryRanked {
                values: self.values(),
                top_k: self.next() as u32,
                min_score_bits: self.next(),
            },
            7 => Request::SubmitLabels {
                items: (0..self.below(4))
                    .map(|_| (self.values(), self.values(), self.below(2) == 1))
                    .collect(),
            },
            8 => Request::Refine { beta_bits: self.next() },
            _ => Request::Stats,
        }
    }

    fn wire_ranked(&mut self) -> WireRanked {
        WireRanked {
            hits: (0..self.below(4))
                .map(|_| WireScoredHit {
                    id: self.next(),
                    key: self.next() as u32,
                    score_bits: self.next(),
                })
                .collect(),
            candidates: self.next(),
            key_evals: self.next(),
            version: self.next(),
        }
    }

    fn wire_query(&mut self) -> WireQuery {
        WireQuery {
            hits: (0..self.below(4))
                .map(|_| WireHit { id: self.next(), key: self.next() as u32 })
                .collect(),
            candidates: self.next(),
            key_evals: self.next(),
            version: self.next(),
        }
    }

    fn schema(&mut self) -> WireSchema {
        WireSchema {
            name: self.string(),
            attributes: (0..self.below(5)).map(|_| self.string()).collect(),
        }
    }

    fn response(&mut self) -> Response {
        match self.below(11) {
            0 => Response::Query(self.wire_query()),
            1 => Response::QueryBatch((0..self.below(3)).map(|_| self.wire_query()).collect()),
            2 => Response::UpsertBatch {
                replaced: (0..self.below(6)).map(|_| self.below(2) == 1).collect(),
                version: self.next(),
            },
            3 => Response::RemoveBatch { version: self.next() },
            4 => Response::Explain {
                matched: self.below(2) == 1,
                fired_key: if self.below(2) == 1 { Some(self.next() as u32) } else { None },
                rendered: self.string(),
                version: self.next(),
            },
            5 => Response::SwapRules { version: self.next() },
            6 => Response::Stats(WireStats {
                version: self.next(),
                epoch: self.next(),
                shard_records: (0..self.below(5)).map(|_| self.next()).collect(),
                queries: self.next(),
                batch_queries: self.next(),
                upserts: self.next(),
                removes: self.next(),
                cache_hits: self.next(),
                cache_misses: self.next(),
                cache_invalidations: self.next(),
                exact_anchors: self.next(),
                qgram_anchors: self.next(),
                derived_anchors: self.next(),
                token_anchors: self.next(),
                bag_anchors: self.next(),
                scan_keys: self.next(),
                store_schema: self.schema(),
                probe_schema: self.schema(),
            }),
            7 => Response::QueryRanked(self.wire_ranked()),
            8 => Response::SubmitLabels {
                added: self.next(),
                total: self.next(),
                positives: self.next(),
                negatives: self.next(),
            },
            9 => Response::Refine(WireRefinement {
                version: self.next(),
                pool_size: self.next(),
                theta_variants: self.next(),
                exhaustive: self.below(2) == 1,
                before_precision_bits: self.next(),
                before_recall_bits: self.next(),
                before_f1_bits: self.next(),
                after_precision_bits: self.next(),
                after_recall_bits: self.next(),
                after_f1_bits: self.next(),
                rules: (0..self.below(4)).map(|_| self.string()).collect(),
            }),
            _ => Response::Error { message: self.string() },
        }
    }
}

/// An `io::Read` that hands out at most `chunk` bytes per call — the
/// small-packet / slow-peer case for the framing layer.
struct Dribble<'a> {
    data: &'a [u8],
    pos: usize,
    chunk: usize,
}

impl Read for Dribble<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.chunk.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Bodies and frames round-trip for every request shape.
    #[test]
    fn requests_round_trip(seed in any::<u64>()) {
        let request = Gen(seed).request();
        prop_assert_eq!(Request::decode(&request.encode()).unwrap(), request.clone());
        let mut framed = Vec::new();
        write_request(&mut framed, &request).unwrap();
        let mut cursor = framed.as_slice();
        prop_assert_eq!(read_request(&mut cursor).unwrap(), Some(request));
        prop_assert_eq!(read_request(&mut cursor).unwrap(), None, "clean EOF after the frame");
    }

    /// Bodies and frames round-trip for every response shape.
    #[test]
    fn responses_round_trip(seed in any::<u64>()) {
        let response = Gen(seed).response();
        prop_assert_eq!(Response::decode(&response.encode()).unwrap(), response.clone());
        let mut framed = Vec::new();
        write_response(&mut framed, &response).unwrap();
        let mut cursor = framed.as_slice();
        prop_assert_eq!(read_response(&mut cursor).unwrap(), Some(response));
    }

    /// Every strict prefix of a valid body is a typed error: the
    /// decoder can never mistake a cut-off message for a complete one,
    /// and never panics on one.
    #[test]
    fn strict_prefixes_are_typed_errors(seed in any::<u64>()) {
        let mut gen = Gen(seed);
        let request_body = gen.request().encode();
        for cut in 0..request_body.len() {
            prop_assert!(
                Request::decode(&request_body[..cut]).is_err(),
                "request prefix of {cut}/{} bytes decoded", request_body.len()
            );
        }
        let response_body = gen.response().encode();
        for cut in 0..response_body.len() {
            prop_assert!(
                Response::decode(&response_body[..cut]).is_err(),
                "response prefix of {cut}/{} bytes decoded", response_body.len()
            );
        }
    }

    /// A frame cut anywhere — inside the length prefix or the body —
    /// reads back as `Truncated`, and appending garbage to a valid body
    /// is `TrailingBytes`.
    #[test]
    fn truncated_frames_and_trailing_bytes_are_typed(seed in any::<u64>()) {
        let request = Gen(seed).request();
        let mut framed = Vec::new();
        write_request(&mut framed, &request).unwrap();
        for cut in 1..framed.len() {
            match read_frame(&mut &framed[..cut]) {
                Err(ProtocolError::Truncated { .. }) => {}
                other => prop_assert!(false, "cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
        let mut padded = request.encode();
        padded.push(0);
        match Request::decode(&padded) {
            Err(ProtocolError::TrailingBytes { extra: 1 }) => {}
            other => prop_assert!(false, "expected TrailingBytes, got {other:?}"),
        }
    }

    /// Arbitrary garbage never panics the decoders — every outcome is
    /// `Ok` or a typed error, even for hostile length fields.
    #[test]
    fn garbage_never_panics(seed in any::<u64>()) {
        let mut gen = Gen(seed);
        let len = gen.below(64) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| gen.next() as u8).collect();
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
        let _ = read_frame(&mut bytes.as_slice());
    }

    /// Frames reassemble exactly through reads of 1, 2 and 8 bytes per
    /// call, for a whole pipelined sequence of messages.
    #[test]
    fn split_reads_reassemble_frames(seed in any::<u64>()) {
        let mut gen = Gen(seed);
        let messages: Vec<Request> = (0..3).map(|_| gen.request()).collect();
        let mut stream = Vec::new();
        for message in &messages {
            write_request(&mut stream, message).unwrap();
        }
        for chunk in [1usize, 2, 8] {
            let mut reader = Dribble { data: &stream, pos: 0, chunk };
            for message in &messages {
                let got = read_request(&mut reader).unwrap();
                prop_assert_eq!(got.as_ref(), Some(message));
            }
            prop_assert_eq!(read_request(&mut reader).unwrap(), None);
        }
    }
}

/// Oversized frames are refused before any allocation, on both the
/// read and the write side.
#[test]
fn oversized_frames_are_rejected() {
    let mut prefix = ((MAX_FRAME + 1) as u32).to_be_bytes().to_vec();
    prefix.extend_from_slice(&[0u8; 8]);
    match read_frame(&mut prefix.as_slice()) {
        Err(ProtocolError::Oversized { len }) => assert_eq!(len, (MAX_FRAME + 1) as u64),
        other => panic!("expected Oversized, got {other:?}"),
    }
    let huge = vec![0u8; MAX_FRAME + 1];
    assert!(matches!(write_frame(&mut Vec::new(), &huge), Err(ProtocolError::Oversized { .. })));
}
