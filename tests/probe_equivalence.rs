//! The differential harness pinning the probe hot path:
//!
//! * **compressed == reference** — `MatchIndex::query` (compressed
//!   postings, galloping intersection, per-entry prefilters, provenance
//!   pruning) returns exactly the hits of `query_reference` (brute-force
//!   verification of every live tuple) on every probe, at 1, 2 and 8
//!   build threads;
//! * **batched == sequential** — `query_batch` / `query_batch_in` are
//!   byte-for-byte identical (hits, candidates, every work counter) to
//!   one-by-one `query` calls, at 1, 2 and 8 pool threads;
//! * **planner invariance** — any `SelectivitySnapshot`, including one
//!   harvested from live traffic, reorders retrieval work but never
//!   changes a hit set;
//! * **sharded server** — `MatchServer::query_batch` agrees
//!   response-for-response with per-probe `query` at 1, 2 and 8 shards;
//! * **tombstone hygiene** — block-level purging keeps a half-removed
//!   index probing within 1.5x of a freshly built one (by deterministic
//!   work counters), and posting-list block invariants survive
//!   insert → remove → insert churn.

use matchrules::core::schema::Schema;
use matchrules::data::dirty::{generate_dirty, NoiseConfig};
use matchrules::data::relation::{Relation, Tuple};
use matchrules::data::Value;
use matchrules::engine::{
    EngineBuilder, ExecConfig, MatchEngine, Preset, QueryOutcome, SelectivitySnapshot,
};
use matchrules::matcher::postings::PostingList;
use matchrules::server::{MatchServer, ServerConfig};
use matchrules::service::{Record, RecordId};
use matchrules_runtime::WorkPool;
use proptest::collection;
use proptest::prelude::*;
use std::sync::Arc;

const THREAD_SWEEP: [usize; 3] = [1, 2, 8];
const SHARD_SWEEP: [usize; 3] = [1, 2, 8];

/// The Extended-preset synthetic catalog: equality, edit and derived
/// anchors, nulls and near-misses included.
fn catalog(persons: usize, seed: u64) -> (MatchEngine, Relation, Relation) {
    let shape = Preset::Extended.paper_setting();
    let data = generate_dirty(
        &shape.pair,
        &shape.target,
        persons,
        &NoiseConfig { seed, ..Default::default() },
    );
    let engine = Preset::Extended
        .builder()
        .top_k(5)
        .statistics_from(&data.credit, &data.billing)
        .build()
        .expect("preset engine builds");
    (engine, data.credit, data.billing)
}

/// A names plan over the serving-shaped anchors (jaro-winkler char-bag,
/// soundex derived keys, token postings, exact buckets).
fn names_engine() -> MatchEngine {
    let a = Schema::text("a", &["first", "last", "city", "phone"]).expect("schema a");
    let b = Schema::text("b", &["first", "last", "city", "phone"]).expect("schema b");
    EngineBuilder::new()
        .schemas(a, b)
        .md_text(
            "a[first] ~jw b[first] /\\ a[last] ~sx b[last] /\\ a[city] ~tok b[city] \
             -> a[first,last] <=> b[first,last]\n\
             a[phone] = b[phone] /\\ a[last] ~sx b[last] -> a[last,phone] <=> b[last,phone]\n",
        )
        .target(&["first", "last", "city", "phone"], &["first", "last", "city", "phone"])
        .build()
        .expect("names engine builds")
}

fn names_rows() -> Vec<(&'static str, &'static str, &'static str, &'static str)> {
    vec![
        ("robert", "smith", "new york", "555-0001"),
        ("roberta", "smyth", "york new", "555-0001"),
        ("bob", "smith", "boston", "555-0002"),
        ("umberto", "schmidt", "new york city", "555-0003"),
        ("robert", "smit", "new york", "555-0004"),
        ("roberto", "smith", "new  york", "555-0001"),
        ("", "", "", ""),
        ("rupert", "smeeth", "newyork", "555-0005"),
    ]
}

fn names_relation(schema: &Arc<Schema>, rows: &[(&str, &str, &str, &str)]) -> Relation {
    let mut rel = Relation::new(schema.clone());
    for (i, (f, l, c, p)) in rows.iter().enumerate() {
        rel.push(Tuple::new(
            i as u64 + 1,
            vec![Value::str(f), Value::str(l), Value::str(c), Value::str(p)],
        ));
    }
    rel
}

fn hit_ids(outcome: &QueryOutcome) -> Vec<(u64, usize)> {
    outcome.hits.iter().map(|h| (h.id, h.key)).collect()
}

/// The deterministic work-counter total of one outcome — what the
/// tombstone budget below is measured in (no wall clocks in tests).
fn work_of(outcome: &QueryOutcome) -> u64 {
    outcome.candidates as u64
        + outcome.stats.blocks_decoded
        + outcome.stats.blocks_skipped
        + outcome.stats.gallop_steps
        + outcome.stats.linear_steps
        + outcome.stats.retrieval_rejects
}

#[test]
fn probe_compressed_equals_brute_force_reference_at_every_thread_count() {
    let (engine, credit, billing) = catalog(80, 42);
    let mut matched_any = false;
    for threads in THREAD_SWEEP {
        let engine = engine.with_exec(ExecConfig::fixed(threads));
        let index = engine.index(&billing).expect("index builds");
        for probe in credit.tuples() {
            let fast = index.query(probe);
            let reference = index.query_reference(probe);
            assert_eq!(
                hit_ids(&fast),
                hit_ids(&reference),
                "compressed probe diverged from the brute-force reference at {threads} threads"
            );
            assert_eq!(hit_ids(&fast), hit_ids(&index.query_unpruned(probe)));
            matched_any |= !fast.hits.is_empty();
        }
    }
    assert!(matched_any, "the catalog must exercise at least one match");
}

#[test]
fn probe_batched_equals_sequential_byte_for_byte() {
    let (engine, credit, billing) = catalog(70, 7);
    let index = engine.index(&billing).expect("index builds");
    let probes: Vec<Tuple> = credit.tuples().to_vec();
    let sequential: Vec<QueryOutcome> = probes.iter().map(|p| index.query(p)).collect();

    // One shared-prep batch: identical outcomes, counters included.
    assert_eq!(index.query_batch(&probes), sequential, "batched != sequential");

    // And chunked over pools of every width (chunks merge in probe
    // order, so the thread count must be invisible).
    for threads in THREAD_SWEEP {
        let pool = WorkPool::with_threads(threads);
        assert_eq!(
            index.query_batch_in(&pool, &probes),
            sequential,
            "pooled batch diverged at {threads} threads"
        );
    }
}

#[test]
fn probe_planner_snapshots_reorder_work_but_never_change_hits() {
    let (engine, credit, billing) = catalog(60, 1234);
    let baseline = engine.index(&billing).expect("default build");
    let expected: Vec<Vec<(u64, usize)>> =
        credit.tuples().iter().map(|p| hit_ids(&baseline.query(p))).collect();

    let snapshots = [
        SelectivitySnapshot::default(),
        SelectivitySnapshot::from_ranks([4.0, 3.0, 2.0, 1.0, 0.0]), // reversed
        SelectivitySnapshot::from_ranks([0.0; 5]),                  // all tied
        baseline.observed_selectivity(), // harvested from the probes above
    ];
    for (which, snapshot) in snapshots.iter().enumerate() {
        let index = engine.index_planned(&billing, snapshot).expect("planned build");
        for (probe, expected) in credit.tuples().iter().zip(&expected) {
            assert_eq!(
                &hit_ids(&index.query(probe)),
                expected,
                "snapshot #{which} ({:?}) changed a hit set",
                snapshot.ranks()
            );
        }
    }

    // The default snapshot reproduces the untuned plan exactly — same
    // candidates and counters, not just the same hits.
    let default_build =
        engine.index_planned(&billing, &SelectivitySnapshot::default()).expect("default planned");
    for probe in credit.tuples() {
        assert_eq!(default_build.query(probe), baseline.query(probe));
    }
}

#[test]
fn probe_sharded_server_batches_agree_with_sequential_queries() {
    let engine = names_engine();
    let rows = names_rows();
    let store_rows = names_relation(&engine.plan().pair().right().clone(), &rows);
    let probe_schema = engine.plan().pair().left().clone();
    let probes: Vec<Record> = store_rows
        .tuples()
        .iter()
        .map(|t| {
            Record::from_values(probe_schema.clone(), t.values().to_vec()).expect("probe record")
        })
        .collect();

    let mut reference: Option<Vec<Vec<(u64, usize)>>> = None;
    for shards in SHARD_SWEEP {
        let engine = names_engine();
        let server = MatchServer::with_config(
            engine,
            ServerConfig { shards, cache_capacity: 64, exec: ExecConfig::fixed(2) },
        );
        let items: Vec<_> = store_rows
            .tuples()
            .iter()
            .map(|t| {
                let record = Record::from_values(server.store_schema(), t.values().to_vec())
                    .expect("store record");
                (RecordId(t.id()), record)
            })
            .collect();
        server.upsert_batch(&items).expect("upsert batch");

        // Batch first (all cache misses run the batched shard path),
        // then singles — every response must agree exactly.
        let batched = server.query_batch(&probes).expect("batch query");
        for (probe, from_batch) in probes.iter().zip(&batched) {
            let single = server.query(probe).expect("single query");
            assert_eq!(&single, from_batch, "batched response diverged at {shards} shards");
        }
        assert_eq!(server.stats().batch_queries, 1);

        // And the hit sets must be identical across shard counts.
        let hits: Vec<Vec<(u64, usize)>> =
            batched.iter().map(|r| r.hits.iter().map(|h| (h.id.0, h.key)).collect()).collect();
        match &reference {
            None => reference = Some(hits),
            Some(expected) => {
                assert_eq!(&hits, expected, "hit sets diverged at {shards} shards")
            }
        }
    }
    assert!(
        reference.expect("sweep ran").iter().any(|h| !h.is_empty()),
        "the names instance must exercise at least one match"
    );
}

#[test]
fn probe_half_removed_index_within_budget_of_fresh() {
    let (engine, credit, billing) = catalog(120, 99);
    let mut churned = engine.index(&billing).expect("index builds");
    // Tombstone every other stored tuple — worst-case fragmentation for
    // posting blocks.
    let victims: Vec<u64> = billing
        .tuples()
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 2 == 0)
        .map(|(_, t)| t.id())
        .collect();
    for id in &victims {
        churned.remove(*id).expect("remove");
    }
    // A fresh index over the surviving tuples is the budget's baseline.
    let fresh = engine.index(&churned.live_relation()).expect("fresh rebuild");

    let mut churned_work = 0u64;
    let mut fresh_work = 0u64;
    for probe in credit.tuples() {
        let a = churned.query(probe);
        let b = fresh.query(probe);
        assert_eq!(hit_ids(&a), hit_ids(&b), "churned and fresh indices must answer alike");
        churned_work += work_of(&a);
        fresh_work += work_of(&b);
    }
    assert!(
        churned_work as f64 <= fresh_work as f64 * 1.5 + 64.0,
        "half-removed index works too hard: {churned_work} vs fresh {fresh_work}"
    );

    // Compression must actually be on for this to mean anything.
    let stats = churned.stats();
    assert!(stats.postings_bytes > 0);
    assert!(stats.postings_bytes <= stats.postings_uncompressed_bytes);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Posting-list block invariants survive arbitrary
    /// insert → remove → insert churn: every sealed block stays
    /// internally consistent (checked by `check_invariants`), decoded
    /// contents stay sorted and unique, every never-removed slot
    /// remains present, and a galloping cursor still finds exactly the
    /// decoded entries.
    #[test]
    fn probe_posting_blocks_survive_insert_remove_insert(
        first_draws in collection::vec(0u32..4000, 1..600),
        removed_picks in collection::vec(0u64..1_000_000, 0..300),
        second_draws in collection::vec(4000u32..8000, 0..300),
    ) {
        let dedup_sorted = |mut v: Vec<u32>| {
            v.sort_unstable();
            v.dedup();
            v
        };
        let first: Vec<u32> = dedup_sorted(first_draws);
        let second: Vec<u32> = dedup_sorted(second_draws);

        let mut list = PostingList::default();
        for &slot in &first {
            list.push(slot);
        }
        list.check_invariants();

        // Remove a subset (tombstones + threshold-triggered rewrites).
        let mut alive = vec![true; 8000];
        let mut removed = std::collections::BTreeSet::new();
        for pick in &removed_picks {
            let slot = first[(*pick as usize) % first.len()];
            if removed.insert(slot) {
                alive[slot as usize] = false;
                list.note_removed(slot, &alive);
                list.check_invariants();
            }
        }

        // Insert again: strictly larger slots (slots are never reused).
        for &slot in &second {
            list.push(slot);
        }
        list.check_invariants();

        let mut decoded = Vec::new();
        list.decode_all_into(&mut decoded);
        let mut sorted = decoded.clone();
        sorted.dedup();
        prop_assert_eq!(&sorted, &decoded, "decoded entries must be sorted and unique");
        prop_assert!(decoded.windows(2).all(|w| w[0] < w[1]));

        // Every surviving slot is still present; nothing foreign crept in.
        for &slot in first.iter().chain(second.iter()) {
            if !removed.contains(&slot) {
                prop_assert!(decoded.binary_search(&slot).is_ok(), "slot {} vanished", slot);
            }
        }
        for &slot in &decoded {
            prop_assert!(
                first.contains(&slot) || second.contains(&slot),
                "slot {} appeared from nowhere", slot
            );
        }

        // A cursor galloping over the blocks agrees with the decode.
        let mut cursor = list.cursor();
        for &slot in &decoded {
            prop_assert_eq!(cursor.advance_to(slot), Some(slot));
        }
    }
}
