//! Property tests: the parallel runtime is invisible in the results.
//! `match_pairs` and `dedup` must produce identical `MatchedPair` sets on
//! randomized dirty-catalog instances at 1, 2 and 8 threads — the
//! determinism contract of `matchrules-runtime` (chunk-ordered merges,
//! total sort orders) holding end to end through the engine.

use matchrules::data::dirty::{generate_dirty, NoiseConfig};
use matchrules::engine::{EngineBuilder, ExecConfig, MatchEngine, Preset};
use proptest::prelude::*;

const THREAD_SWEEP: [usize; 2] = [2, 8];

/// A reflexive dedup engine over the extended billing schema (duplicate
/// purchases of one card holder collapse on phone+name or email).
fn billing_dedup_engine() -> MatchEngine {
    let shape = Preset::Extended.paper_setting();
    let billing = shape.pair.right().as_ref().clone();
    EngineBuilder::new()
        .dedup_schema(billing)
        .md_text(
            "billing[phn] = billing[phn] /\\ billing[LN] ~d billing[LN] -> \
             billing[FN,LN,phn] <=> billing[FN,LN,phn]\n\
             billing[email] = billing[email] /\\ billing[zip] = billing[zip] -> \
             billing[FN,LN,phn] <=> billing[FN,LN,phn]\n",
        )
        .target(&["FN", "LN", "phn"], &["FN", "LN", "phn"])
        .build()
        .expect("reflexive billing engine builds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Cross-relation matching: same pairs, same provenance, same order,
    /// at every thread count.
    #[test]
    fn parallel_match_pairs_equals_serial(seed in 0u64..100_000, persons in 10usize..60) {
        let shape = Preset::Extended.paper_setting();
        let data = generate_dirty(
            &shape.pair,
            &shape.target,
            persons,
            &NoiseConfig { seed, ..Default::default() },
        );
        let engine = Preset::Extended
            .builder()
            .top_k(5)
            .statistics_from(&data.credit, &data.billing)
            .build()
            .expect("preset engine builds");
        let serial = engine
            .with_exec(ExecConfig::serial())
            .match_pairs(&data.credit, &data.billing)
            .expect("serial run");
        prop_assert_eq!(serial.threads(), 1);
        for threads in THREAD_SWEEP {
            let parallel = engine
                .with_exec(ExecConfig::fixed(threads))
                .match_pairs(&data.credit, &data.billing)
                .expect("parallel run");
            prop_assert_eq!(
                parallel.pairs(), serial.pairs(),
                "match_pairs diverged at {} threads (seed {seed}, {persons} persons)",
                threads
            );
            prop_assert_eq!(parallel.candidates(), serial.candidates());
        }
    }

    /// Single-relation dedup: identical pairs *and* identical entity
    /// clusters (the closure is merge-order-sensitive, so this also pins
    /// the deterministic union order).
    #[test]
    fn parallel_dedup_equals_serial(seed in 0u64..100_000, persons in 10usize..50) {
        let shape = Preset::Extended.paper_setting();
        let data = generate_dirty(
            &shape.pair,
            &shape.target,
            persons,
            &NoiseConfig { seed, ..Default::default() },
        );
        let engine = billing_dedup_engine();
        let serial =
            engine.with_exec(ExecConfig::serial()).dedup(&data.billing).expect("serial dedup");
        for threads in THREAD_SWEEP {
            let parallel = engine
                .with_exec(ExecConfig::fixed(threads))
                .dedup(&data.billing)
                .expect("parallel dedup");
            prop_assert_eq!(
                parallel.report.pairs(), serial.report.pairs(),
                "dedup pairs diverged at {} threads (seed {seed}, {persons} persons)",
                threads
            );
            prop_assert_eq!(&parallel.clusters, &serial.clusters);
            prop_assert_eq!(parallel.entity_count(), serial.entity_count());
        }
    }
}
