//! The MatchServer contract, end to end:
//!
//! * sharded servers (1/2/8 shards) answer every probe hit-for-hit
//!   identically to a single-owner `MatchService` fed the same operation
//!   sequence — including across a mid-stream `swap_rules`, replacements
//!   and removals (proptest);
//! * `swap_rules` has zero read downtime: readers hammering the server
//!   during repeated swaps never fail, never block on the rebuild, and
//!   observe only monotonically non-decreasing rule versions;
//! * the probe cache serves repeats and is invalidated by every publish;
//! * the TCP front round-trips upsert/query/explain/swap/stats/remove
//!   through `MatchClient`, with service errors typed, not fatal.

use matchrules::data::dirty::{generate_dirty, NoiseConfig};
use matchrules::data::relation::Relation;
use matchrules::engine::{EngineBuilder, ExecConfig, Preset, Threads};
use matchrules::server::net::serve;
use matchrules::server::{ClientError, MatchClient, MatchServer, ServerConfig};
use matchrules::service::{MatchService, Record, RecordId};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

const SHARD_SWEEP: [usize; 3] = [1, 2, 8];

/// A genuinely different rule set for the extended pair (MDs 1, 6 and 7
/// of the §6 setting dropped), so a swap changes the deduced RCKs.
const SWAPPED_RULES: &str = "\
    credit[email] = billing[email] -> credit[FN,MN,LN] <=> billing[FN,MN,LN]\n\
    credit[tel] = billing[phn] -> \
    credit[street,city,county,state,zip] <=> billing[street,city,county,state,zip]\n\
    credit[zip] = billing[zip] -> credit[city,county,state] <=> billing[city,county,state]\n\
    credit[LN] ~d billing[LN] /\\ credit[tel] = billing[phn] /\\ credit[FN] ~d billing[FN] -> \
    credit[FN,MN,LN,street,city,county,state,zip,tel,email,gender] <=> \
    billing[FN,MN,LN,street,city,county,state,zip,phn,email,gender]\n";

fn extended_server(shards: usize, threads: usize) -> MatchServer {
    let engine = Preset::Extended.builder().top_k(5).threads(threads).build().unwrap();
    MatchServer::with_config(
        engine,
        ServerConfig {
            shards,
            cache_capacity: 32,
            exec: ExecConfig { threads: Threads::Fixed(threads) },
        },
    )
}

fn store_record(server: &MatchServer, t: &matchrules::data::relation::Tuple) -> Record {
    Record::from_values(server.store_schema(), t.values().to_vec()).unwrap()
}

/// Every probe must get hit-for-hit identical answers (ids, fired keys,
/// order, rule version) from the sharded server and the single-owner
/// service. Aggregate counters (`candidates`, `key_evals`, `stats`) are
/// *not* compared: each shard prunes its own retrieval independently,
/// so the work accounting legitimately differs — the answers may not.
fn assert_equivalent(service: &MatchService, server: &MatchServer, credit: &Relation) {
    for t in credit.tuples() {
        let probe_a =
            Record::from_values(service.probe_schema().clone(), t.values().to_vec()).unwrap();
        let probe_b = Record::from_values(server.probe_schema(), t.values().to_vec()).unwrap();
        let a = service.query(&probe_a).unwrap();
        let b = server.query(&probe_b).unwrap();
        assert_eq!(a.hits, b.hits, "hits diverged for probe {}", t.id());
        assert_eq!(a.version, b.version);
    }
    // The merged store snapshots agree too (same records, same order).
    let ids = |rel: &Relation| rel.tuples().iter().map(|t| t.id()).collect::<Vec<_>>();
    assert_eq!(ids(&service.snapshot()), ids(&server.snapshot()), "store order diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// 1-, 2- and 8-shard servers answer byte-identically to a single
    /// `MatchService` through a full lifecycle: bulk upsert, rule swap,
    /// more upserts, a replacement and a removal.
    #[test]
    fn sharded_answers_equal_single_owner(seed in 0u64..100_000, persons in 8usize..20) {
        let shape = Preset::Extended.paper_setting();
        let data = generate_dirty(
            &shape.pair,
            &shape.target,
            persons,
            &NoiseConfig { seed, ..Default::default() },
        );
        let tuples = data.billing.tuples();
        let mid = tuples.len() / 2;
        for shards in SHARD_SWEEP {
            let engine = Preset::Extended.builder().top_k(5).threads(2).build().unwrap();
            let mut service = MatchService::new(engine);
            let server = extended_server(shards, 2);

            // Phase 1: bulk upsert the first half (the server takes it
            // as one batch, the service one by one — same sequence).
            let batch: Vec<(RecordId, Record)> = tuples[..mid]
                .iter()
                .map(|t| (RecordId(t.id()), store_record(&server, t)))
                .collect();
            for (id, record) in &batch {
                service.upsert(*id, record).unwrap();
            }
            let replaced = server.upsert_batch(&batch).unwrap();
            prop_assert!(replaced.iter().all(|&r| !r), "fresh ids never report replacement");
            assert_equivalent(&service, &server, &data.credit);

            // Phase 2: swap rules mid-stream on both sides.
            let v2_service = service.swap_rules(SWAPPED_RULES).unwrap();
            let v2_server = server.swap_rules(SWAPPED_RULES).unwrap();
            prop_assert_eq!(v2_service.number(), 2);
            prop_assert_eq!(v2_server.number(), 2);
            assert_equivalent(&service, &server, &data.credit);

            // Phase 3: the second half arrives under the new rules,
            // plus a replacement (an old id re-upserted with the first
            // new tuple's values) and a removal.
            let replaced_id = RecordId(tuples[0].id());
            let replacement = store_record(&server, &tuples[mid]);
            service.upsert(replaced_id, &replacement).unwrap();
            prop_assert!(server.upsert(replaced_id, &replacement).unwrap());
            for t in &tuples[mid..] {
                let record = store_record(&server, t);
                service.upsert(RecordId(t.id()), &record).unwrap();
                server.upsert(RecordId(t.id()), &record).unwrap();
            }
            let removed_id = RecordId(tuples[1].id());
            service.remove(removed_id).unwrap();
            server.remove(removed_id).unwrap();
            prop_assert!(!server.contains(removed_id));
            assert_equivalent(&service, &server, &data.credit);

            // Explanations agree as well (rendered form included).
            let probe_tuple = &data.credit.tuples()[0];
            let probe_a = Record::from_values(
                service.probe_schema().clone(), probe_tuple.values().to_vec()).unwrap();
            let probe_b = Record::from_values(
                server.probe_schema(), probe_tuple.values().to_vec()).unwrap();
            let id = RecordId(tuples[2].id());
            let why_a = service.explain(&probe_a, id).unwrap();
            let why_b = server.explain(&probe_b, id).unwrap();
            prop_assert_eq!(why_a.matched, why_b.matched);
            prop_assert_eq!(why_a.fired_key, why_b.fired_key);
            prop_assert_eq!(why_a.to_string(), why_b.to_string());
        }
    }
}

/// The pinned zero-downtime contract: while `swap_rules` rebuilds and
/// republishes every shard, concurrent readers keep getting answers —
/// no errors, no torn versions, versions only ever move forward — and
/// some reads demonstrably complete *during* swap windows.
#[test]
fn swap_rules_has_zero_read_downtime() {
    let shape = Preset::Extended.paper_setting();
    let data = generate_dirty(
        &shape.pair,
        &shape.target,
        120,
        &NoiseConfig { seed: 0xD0C5, ..Default::default() },
    );
    let server = Arc::new(extended_server(4, 2));
    let batch: Vec<(RecordId, Record)> = data
        .billing
        .tuples()
        .iter()
        .map(|t| (RecordId(t.id()), store_record(&server, t)))
        .collect();
    server.upsert_batch(&batch).unwrap();

    let probes: Vec<Record> = data
        .credit
        .tuples()
        .iter()
        .take(16)
        .map(|t| Record::from_values(server.probe_schema(), t.values().to_vec()).unwrap())
        .collect();

    let stop = AtomicBool::new(false);
    let swapping = AtomicBool::new(false);
    let reads_during_swap = AtomicU64::new(0);
    let total_reads = AtomicU64::new(0);
    let mut swaps = 0u64;

    thread::scope(|scope| {
        for reader_id in 0..3usize {
            let server = &server;
            let stop = &stop;
            let swapping = &swapping;
            let reads_during_swap = &reads_during_swap;
            let total_reads = &total_reads;
            let probes = &probes;
            scope.spawn(move || {
                let mut reader = server.reader();
                let mut last_version = 0u64;
                let mut i = reader_id;
                while !stop.load(Ordering::Relaxed) {
                    let in_window = swapping.load(Ordering::Relaxed);
                    let response = reader
                        .query(&probes[i % probes.len()])
                        .expect("a read must never fail, swap or no swap");
                    assert!(
                        response.version.number() >= last_version,
                        "rule versions must never move backwards for a reader"
                    );
                    last_version = response.version.number();
                    total_reads.fetch_add(1, Ordering::Relaxed);
                    // Only count reads fully inside the swap window: the
                    // flag was up before the read began and still is.
                    if in_window && swapping.load(Ordering::Relaxed) {
                        reads_during_swap.fetch_add(1, Ordering::Relaxed);
                    }
                    i += 1;
                }
            });
        }

        // Alternate between the two rule sets until reads provably
        // landed inside swap windows (each swap rebuilds 4 shards over
        // 120+ records, a wide-open window; a handful of rounds is
        // plenty even on one core).
        let original = Preset::Extended.paper_setting().sigma;
        for round in 0..5 {
            thread::sleep(Duration::from_millis(20));
            swapping.store(true, Ordering::Relaxed);
            let version = if round % 2 == 0 {
                server.swap_rules(SWAPPED_RULES).unwrap()
            } else {
                server.swap_rules_with(original.clone()).unwrap()
            };
            swapping.store(false, Ordering::Relaxed);
            swaps += 1;
            assert_eq!(version.number(), 1 + swaps);
            if round >= 1 && reads_during_swap.load(Ordering::Relaxed) > 0 {
                break;
            }
        }
        thread::sleep(Duration::from_millis(10));
        stop.store(true, Ordering::Relaxed);
    });

    assert!(total_reads.load(Ordering::Relaxed) > 0, "readers actually ran");
    assert!(
        reads_during_swap.load(Ordering::Relaxed) > 0,
        "reads must complete during swap windows, not queue behind them"
    );
    assert_eq!(server.version().number(), 1 + swaps, "every swap bumped the version exactly once");
}

/// Repeat probes are served from the cache; any publish (upsert or
/// swap) invalidates it wholesale, so answers never go stale.
#[test]
fn probe_cache_serves_repeats_and_invalidates_on_publish() {
    let shape = Preset::Extended.paper_setting();
    let data = generate_dirty(
        &shape.pair,
        &shape.target,
        20,
        &NoiseConfig { seed: 0xCAC4E, ..Default::default() },
    );
    let server = extended_server(2, 1);
    let batch: Vec<(RecordId, Record)> = data
        .billing
        .tuples()
        .iter()
        .map(|t| (RecordId(t.id()), store_record(&server, t)))
        .collect();
    server.upsert_batch(&batch).unwrap();

    let probe =
        Record::from_values(server.probe_schema(), data.credit.tuples()[0].values().to_vec())
            .unwrap();
    let first = server.query(&probe).unwrap();
    let second = server.query(&probe).unwrap();
    assert_eq!(first, second);
    let stats = server.stats();
    assert!(stats.cache_hits >= 1, "the repeat probe must hit the cache");

    // A mutation invalidates: the same probe is recomputed against the
    // new store and sees the removal.
    if let Some(hit) = first.hits.first() {
        server.remove(hit.id).unwrap();
        let after = server.query(&probe).unwrap();
        assert!(after.hits.iter().all(|h| h.id != hit.id), "stale cached hit served");
    }

    // A swap invalidates too, and restamps the version.
    server.swap_rules(SWAPPED_RULES).unwrap();
    let after_swap = server.query(&probe).unwrap();
    assert_eq!(after_swap.version.number(), 2);
}

/// End-to-end over TCP: connect, learn schemas, upsert, query (with
/// fired-RCK provenance), explain, swap rules, stats, remove — then a
/// service error that leaves the connection usable.
#[test]
fn tcp_front_round_trips_and_swaps() {
    use matchrules::core::schema::Schema;

    let people = Schema::text("people", &["name", "phone", "email"]).unwrap();
    let engine = EngineBuilder::new()
        .dedup_schema(people)
        .md_text("people[email] = people[email] -> people[name,phone] <=> people[name,phone]")
        .target(&["name", "phone"], &["name", "phone"])
        .build()
        .unwrap();
    let server = Arc::new(MatchServer::with_config(
        engine,
        ServerConfig {
            shards: 2,
            cache_capacity: 16,
            exec: ExecConfig { threads: Threads::Fixed(1) },
        },
    ));
    let handle = serve(server.clone(), "127.0.0.1:0").unwrap();

    let mut client = MatchClient::connect(handle.addr()).unwrap();
    assert_eq!(client.store_schema().name, "people");
    assert_eq!(client.store_schema().attributes, ["name", "phone", "email"]);

    assert!(!client
        .upsert(
            1,
            &[("name", "Ada Lovelace"), ("phone", "020-7946-0001"), ("email", "ada@example.org")]
        )
        .unwrap());
    assert!(!client
        .upsert(
            2,
            &[("name", "Alan Turing"), ("phone", "020-7946-0002"), ("email", "alan@example.org")]
        )
        .unwrap());

    // Query with fired-RCK provenance, stamped v1.
    let answer = client.query(&[("name", "A. Lovelace"), ("email", "ada@example.org")]).unwrap();
    assert_eq!(answer.version, 1);
    assert_eq!(answer.hits.len(), 1);
    assert_eq!(answer.hits[0].id, 1);

    // Explanations render over the wire.
    let (matched, rendered) =
        client.explain(&[("name", "A. Lovelace"), ("email", "ada@example.org")], 1).unwrap();
    assert!(matched);
    assert!(rendered.contains("MATCH"));

    // Stats reflect both sides of the conversation so far.
    let stats = client.stats().unwrap();
    assert_eq!(stats.version, 1);
    assert_eq!(stats.shard_records.iter().sum::<u64>(), 2);
    assert!(stats.queries >= 1);

    // Hot-swap to phone-keyed rules: the email probe stops matching,
    // a phone probe starts, everything stamped v2.
    let v2 = client
        .swap_rules("people[phone] = people[phone] -> people[name,phone] <=> people[name,phone]")
        .unwrap();
    assert_eq!(v2, 2);
    let stale = client.query(&[("email", "ada@example.org")]).unwrap();
    assert_eq!(stale.version, 2);
    assert!(stale.hits.is_empty(), "the email rule is gone");
    let fresh = client.query(&[("phone", "020-7946-0002")]).unwrap();
    assert_eq!(fresh.hits.len(), 1);
    assert_eq!(fresh.hits[0].id, 2);

    // Removal over the wire; a second client sees the same state.
    client.remove(&[1]).unwrap();
    let mut second = MatchClient::connect(handle.addr()).unwrap();
    assert_eq!(second.stats().unwrap().shard_records.iter().sum::<u64>(), 1);

    // Service errors are typed and do not poison the connection.
    let err = client.explain(&[("phone", "020-7946-0002")], 999).unwrap_err();
    assert!(matches!(err, ClientError::Server { .. }), "{err:?}");
    assert!(err.to_string().contains("#999"));
    assert_eq!(client.query(&[("phone", "020-7946-0002")]).unwrap().hits.len(), 1);

    // Unknown client-side fields fail before anything hits the wire.
    assert!(matches!(client.query(&[("nope", "x")]), Err(ClientError::UnknownField { .. })));

    handle.shutdown();
    // The server object itself is untouched by the front shutting down.
    assert_eq!(server.len(), 1);
}
