//! MatchIndex tombstone behavior under insert → remove → insert cycles:
//! removed ids never resurface, re-inserted ids come back, and
//! `stats()` / query results stay consistent with a fresh index built
//! over the live records — at 1, 2 and 8 threads.

use matchrules::data::dirty::{generate_dirty, NoiseConfig};
use matchrules::data::relation::{Relation, Tuple};
use matchrules::engine::{ExecConfig, Preset};
use proptest::prelude::*;

const THREAD_SWEEP: [usize; 3] = [1, 2, 8];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Cycle every billing tuple through insert → remove → insert (the
    /// removal pattern keyed by `modulus`), then check:
    /// * no removed id is ever returned by any query;
    /// * re-inserted ids are returned again, with the same key;
    /// * `stats()` counts live/tombstoned slots exactly;
    /// * every query answers like a fresh, tombstone-free index over the
    ///   live records (ids and key provenance).
    #[test]
    fn insert_remove_insert_cycles_stay_consistent(
        seed in 0u64..100_000,
        persons in 8usize..28,
        modulus in 2u64..5,
    ) {
        let shape = Preset::Extended.paper_setting();
        let data = generate_dirty(
            &shape.pair,
            &shape.target,
            persons,
            &NoiseConfig { seed, ..Default::default() },
        );
        let engine = Preset::Extended.builder().top_k(5).build().unwrap();
        let empty = Relation::new(data.billing.schema().clone());

        for threads in THREAD_SWEEP {
            let engine = engine.with_exec(ExecConfig::fixed(threads));
            let mut index = engine.index(&empty).unwrap();

            // Insert everything.
            for t in data.billing.tuples() {
                index.insert(Tuple::new(t.id(), t.values().to_vec())).unwrap();
            }
            let total = data.billing.len();
            prop_assert_eq!(index.len(), total);
            prop_assert_eq!(index.stats().tombstones, 0);

            // Remove a seed-keyed subset…
            let removed: Vec<u64> = data
                .billing
                .tuples()
                .iter()
                .map(|t| t.id())
                .filter(|id| id % modulus == seed % modulus)
                .collect();
            for &id in &removed {
                index.remove(id).unwrap();
            }
            prop_assert_eq!(index.len(), total - removed.len());
            prop_assert_eq!(index.stats().tombstones, removed.len());
            for probe in data.credit.tuples() {
                let hits = index.query(probe).hits;
                prop_assert!(
                    hits.iter().all(|h| !removed.contains(&h.id)),
                    "a removed id resurfaced at {} threads", threads
                );
            }

            // …then re-insert every other removed tuple (a second
            // insert → remove → insert cycle for those ids).
            let back: Vec<u64> = removed.iter().copied().step_by(2).collect();
            for &id in &back {
                let t = data.billing.by_id(id).unwrap();
                index.insert(Tuple::new(id, t.values().to_vec())).unwrap();
            }
            let still_gone: Vec<u64> =
                removed.iter().copied().filter(|id| !back.contains(id)).collect();
            prop_assert_eq!(index.len(), total - still_gone.len());
            // Re-insertion appends a fresh slot; the old tombstones stay
            // until a rebuild compacts them.
            prop_assert_eq!(index.stats().tombstones, removed.len());
            prop_assert_eq!(
                index.stats().live + index.stats().tombstones,
                index.relation().len()
            );

            // The cycled index answers exactly like a fresh index over
            // its live records.
            let live = index.live_relation();
            prop_assert_eq!(live.len(), index.len());
            let fresh = engine.index(&live).unwrap();
            prop_assert_eq!(fresh.stats().tombstones, 0);
            for probe in data.credit.tuples() {
                let cycled: Vec<(u64, usize)> =
                    index.query(probe).hits.iter().map(|h| (h.id, h.key)).collect();
                let clean: Vec<(u64, usize)> =
                    fresh.query(probe).hits.iter().map(|h| (h.id, h.key)).collect();
                prop_assert!(
                    cycled.iter().all(|(id, _)| !still_gone.contains(id)),
                    "a removed id resurfaced after re-inserts at {} threads", threads
                );
                prop_assert_eq!(
                    cycled, clean,
                    "cycled index diverges from a fresh build at {} threads (seed {})",
                    threads, seed
                );
            }
        }
    }
}
