//! Integration tests replaying every worked example of the paper across
//! the crate boundaries (core reasoning × data × matching).

use matchrules::core::cost::CostModel;
use matchrules::core::deduction::{closure_for, deduces};
use matchrules::core::paper;
use matchrules::core::rck::find_rcks;
use matchrules::data::enforce::{enforce, is_stable, satisfies_all};
use matchrules::data::eval::{paper_registry, RuntimeOps};
use matchrules::data::fig1;
use matchrules::matcher::key::KeyMatcher;

/// Example 1.1: the given key (rck1) matches only t3 against t1; the
/// deduced keys (rck2–rck4) recover t4–t6. "These deduced keys have added
/// value."
#[test]
fn example_1_1_added_value() {
    let (setting, instance) = fig1::setting_and_instance();
    let ops = RuntimeOps::resolve(&setting.ops, &paper_registry()).unwrap();
    let rcks = paper::example_2_4_rcks(&setting);
    let t1 = instance.left().by_id(fig1::ids::T1).unwrap();

    let given = KeyMatcher::new(std::iter::once(&rcks[0]), &ops);
    let deduced = KeyMatcher::new(rcks.iter().skip(1), &ops);
    let both = KeyMatcher::new(rcks.iter(), &ops);

    let matched = |m: &KeyMatcher<'_>| -> Vec<u64> {
        instance.right().tuples().iter().filter(|bt| m.matches(t1, bt)).map(|bt| bt.id()).collect()
    };
    assert_eq!(matched(&given), vec![fig1::ids::T3]);
    assert_eq!(matched(&deduced), vec![fig1::ids::T4, fig1::ids::T5, fig1::ids::T6]);
    assert_eq!(matched(&both).len(), 4);
}

/// Example 2.4 / 3.5: all four RCKs are keys relative to (Yc, Yb) deduced
/// from Σc, and they are *minimal* (no proper sub-key works).
#[test]
fn example_2_4_keys_are_minimal() {
    let setting = paper::example_1_1();
    for key in paper::example_2_4_rcks(&setting) {
        assert!(deduces(&setting.sigma, &key.to_md(&setting.target)));
        for atom in key.atoms() {
            let sub = key.without(atom);
            assert!(
                sub.is_empty() || !deduces(&setting.sigma, &sub.to_md(&setting.target)),
                "sub-key {sub:?} should not be a key"
            );
        }
    }
}

/// Example 4.1: the closure trace applies ϕ2 and ϕ3 before ϕ1 and ends
/// with all (Yc, Yb) pairs identified.
#[test]
fn example_4_1_trace() {
    let setting = paper::example_1_1();
    let rck4 = paper::example_2_4_rcks(&setting).remove(3);
    let phi = rck4.to_md(&setting.target);
    let closure = closure_for(&setting.sigma, &phi);
    let fired = closure.fired();
    // ϕ1 (index 0) fires last; ϕ2 (1) and ϕ3 (2) fire before it.
    let first_phi1 = fired.iter().position(|&i| i == 0).unwrap();
    assert!(fired[..first_phi1].contains(&1));
    assert!(fired[..first_phi1].contains(&2));
    for pair in phi.rhs() {
        assert!(closure.holds(pair.left, pair.right, matchrules::core::OperatorId::EQ));
    }
}

/// Example 5.1 (per-attribute granularity): findRCKs returns exactly the
/// complete antichain of keys, including rck2, rck3 and rck4.
#[test]
fn example_5_1_enumeration() {
    let setting = paper::example_1_1();
    let mut cost = CostModel::diversity_only();
    let outcome = find_rcks(&setting.sigma, &setting.target, 16, &mut cost);
    assert!(outcome.complete);
    let expected = paper::example_2_4_rcks(&setting);
    for key in &expected[1..] {
        assert!(outcome.keys.contains(key), "missing {key:?}");
    }
}

/// §2.1/§3.1 dynamic semantics on Fig. 1: enforcing Σc yields a stable
/// instance satisfying (D, D') |= Σc, in which t1 and t3–t6 agree on the
/// full (Yc, Yb) lists.
#[test]
fn fig1_enforcement_reaches_stability() {
    let (setting, instance) = fig1::setting_and_instance();
    let ops = RuntimeOps::resolve(&setting.ops, &paper_registry()).unwrap();
    let outcome = enforce(&instance, &setting.sigma, &ops);
    assert!(is_stable(&outcome.result, &setting.sigma, &ops));
    assert!(satisfies_all(&instance, &outcome.result, &setting.sigma, &ops));

    // In D', t1 and t3 (which matched ϕ1's LHS in D) agree on all of Yc/Yb.
    let t1 = outcome.result.left().by_id(fig1::ids::T1).unwrap();
    let t3 = outcome.result.right().by_id(fig1::ids::T3).unwrap();
    for (&l, &r) in setting.target.y1().iter().zip(setting.target.y2()) {
        assert_eq!(t1.get(l), t3.get(r), "Yc/Yb must be identified for t1/t3");
    }
}

/// The deduced rck4, applied to the *original* Fig. 1 instance, matches
/// (t1, t6) — although in the static reading t1 and t6 "violate" it
/// (Example 3.4's added-value discussion).
#[test]
fn example_3_4_dynamic_vs_static() {
    let (setting, instance) = fig1::setting_and_instance();
    let ops = RuntimeOps::resolve(&setting.ops, &paper_registry()).unwrap();
    let rck4 = &paper::example_2_4_rcks(&setting)[3];
    let t1 = instance.left().by_id(fig1::ids::T1).unwrap();
    let t6 = instance.right().by_id(fig1::ids::T6).unwrap();
    // LHS (email, phone) matches…
    assert!(ops.lhs_matches(rck4.atoms(), t1, t6));
    // …while names/addresses are radically different in D.
    let fn_c = setting.pair.left().attr("FN").unwrap();
    let fn_b = setting.pair.right().attr("FN").unwrap();
    assert_ne!(t1.get(fn_c), t6.get(fn_b));
}
