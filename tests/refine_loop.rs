//! The refinement loop, end to end:
//!
//! * the selected rule set's F_β on the labeled sample is **never below
//!   the seed's** — the serving rules are one of the greedy starting
//!   points, so refinement can only hold or improve (proptest over
//!   noise seeds and β);
//! * every selected rule has **strictly positive marginal gain**: no
//!   freeloaders survive selection (proptest);
//! * the whole run is deterministic across engine thread counts, and
//!   `refine → swap_rules_refined` answers **hit-for-hit identically**
//!   to a fresh service/server compiled directly from the selected
//!   rules — at 1, 2 and 8 threads and shards (proptest);
//! * a running `MatchServer` accepts `SubmitLabels` and `Refine` over
//!   the TCP wire, hot-swaps the selected rules with zero downtime, and
//!   keeps answering.

use matchrules::data::dirty::{generate_dirty, DirtyData, NoiseConfig};
use matchrules::data::value::Value;
use matchrules::engine::{EngineBuilder, MatchEngine, Preset};
use matchrules::refine::{LabelStore, RefineConfig, Refinement, Refiner};
use matchrules::server::net::serve;
use matchrules::server::wire::{Request, Response, WireLabel};
use matchrules::server::{MatchClient, MatchServer, ServerConfig};
use matchrules::service::{MatchService, Record, RecordId};
use proptest::prelude::*;
use std::sync::Arc;

const THREAD_SWEEP: [usize; 3] = [1, 2, 8];

/// A deliberately weak serving rule set for the extended pair: one exact
/// key and one over-strict fuzzy key. Refinement has headroom — mined
/// candidates and looser θ-variants of the `≈d` atoms can recover the
/// recall the seed leaves on the table.
const WEAK_RULES: &str = "\
    credit[email] = billing[email] -> \
    credit[FN,MN,LN,street,city,county,state,zip,tel,email,gender] <=> \
    billing[FN,MN,LN,street,city,county,state,zip,phn,email,gender]\n\
    credit[LN] ~d billing[LN] /\\ credit[FN] ~d billing[FN] /\\ credit[zip] = billing[zip] -> \
    credit[FN,MN,LN,street,city,county,state,zip,tel,email,gender] <=> \
    billing[FN,MN,LN,street,city,county,state,zip,phn,email,gender]\n";

fn dirty(persons: usize, seed: u64) -> DirtyData {
    let shape = Preset::Extended.paper_setting();
    generate_dirty(
        &shape.pair,
        &shape.target,
        persons,
        &NoiseConfig { seed, ..NoiseConfig::default() },
    )
}

fn weak_engine(data: &DirtyData, threads: usize) -> MatchEngine {
    let shape = Preset::Extended.paper_setting();
    EngineBuilder::new()
        .schema_pair(shape.pair)
        .md_text(WEAK_RULES)
        .target_ids(shape.target)
        .top_k(5)
        .threads(threads)
        .statistics_from(&data.credit, &data.billing)
        .build()
        .expect("weak engine builds")
}

fn labels_for(data: &DirtyData) -> LabelStore {
    LabelStore::from_truth(&data.credit, &data.billing, &data.truth, 2)
        .expect("generated truth labels cleanly")
}

fn refine_once(data: &DirtyData, threads: usize, beta: f64) -> Refinement {
    let engine = weak_engine(data, threads);
    let refiner = Refiner::new(engine.plan(), engine.registry())
        .with_config(RefineConfig { beta, ..RefineConfig::default() });
    refiner.refine(&labels_for(data)).expect("refinement selects a rule set")
}

/// Upserts every billing tuple into `service` and returns the probe
/// records (one per credit tuple).
fn fill_service(service: &mut MatchService, data: &DirtyData) -> Vec<Record> {
    for t in data.billing.tuples() {
        let record =
            Record::from_values(service.store_schema().clone(), t.values().to_vec()).unwrap();
        service.upsert(RecordId(t.id()), &record).unwrap();
    }
    data.credit
        .tuples()
        .iter()
        .map(|t| Record::from_values(service.probe_schema().clone(), t.values().to_vec()).unwrap())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The floor guarantee: F_β(selected) ≥ F_β(seed) on the labeled
    /// sample, for skewed β as well as F1 — and no selected rule rides
    /// for free (every marginal gain strictly positive).
    #[test]
    fn refined_fbeta_never_below_seed_and_gains_positive(
        seed in 0u64..1024,
        beta_case in 0usize..3,
    ) {
        let beta = [0.5, 1.0, 2.0][beta_case];
        let data = dirty(60, seed);
        let refinement = refine_once(&data, 1, beta);
        let report = &refinement.report;
        prop_assert!(
            report.after.f_beta(beta) >= report.before.f_beta(beta),
            "refined F_{beta} {} fell below seed {}",
            report.after.f_beta(beta),
            report.before.f_beta(beta)
        );
        prop_assert!(!report.selected.is_empty());
        for rule in &report.selected {
            prop_assert!(
                rule.marginal_gain > 0.0,
                "rule #{} ({}) selected with non-positive marginal gain {}",
                rule.pool_index, rule.rendered, rule.marginal_gain
            );
        }
    }

    /// The same labels produce the same refinement at every engine
    /// thread count, and deploying it via `swap_rules_refined` answers
    /// hit-for-hit identically to a fresh service compiled directly
    /// from the selected rules — at 1, 2 and 8 threads, and on sharded
    /// servers at 1, 2 and 8 shards.
    #[test]
    fn refine_swap_equals_fresh_build_across_threads_and_shards(seed in 0u64..1024) {
        let data = dirty(50, seed);
        let baseline = refine_once(&data, 1, 1.0);
        let shape = Preset::Extended.paper_setting();

        // The fresh build: selected rules + extended operator world,
        // compiled from scratch.
        let fresh_engine = EngineBuilder::new()
            .schema_pair(shape.pair)
            .operator_table(baseline.ops.clone())
            .operators(baseline.registry.clone())
            .mds(baseline.rules.clone())
            .target_ids(shape.target)
            .top_k(5)
            .statistics_from(&data.credit, &data.billing)
            .build()
            .expect("fresh engine compiles from the selected rules");
        let mut fresh = MatchService::new(fresh_engine);
        let probes = fill_service(&mut fresh, &data);

        for threads in THREAD_SWEEP {
            let refinement = refine_once(&data, threads, 1.0);
            let rendered =
                |r: &Refinement| r.report.selected.iter().map(|s| s.rendered.clone()).collect::<Vec<_>>();
            prop_assert_eq!(rendered(&refinement), rendered(&baseline), "threads={}", threads);
            prop_assert_eq!(refinement.report.after, baseline.report.after);
            prop_assert_eq!(refinement.report.before, baseline.report.before);

            // Single-owner service: refine → swap ≡ fresh build.
            let mut service = MatchService::new(weak_engine(&data, threads));
            fill_service(&mut service, &data);
            let version = service.swap_rules_refined(&refinement).unwrap();
            prop_assert_eq!(version.number(), 2);
            for probe in &probes {
                let swapped = service.query(probe).unwrap();
                let direct = fresh.query(probe).unwrap();
                prop_assert_eq!(&swapped.hits, &direct.hits);
            }
        }

        for shards in THREAD_SWEEP {
            let server = MatchServer::with_config(
                weak_engine(&data, 2),
                ServerConfig { shards, cache_capacity: 16, ..ServerConfig::default() },
            );
            for t in data.billing.tuples() {
                let record =
                    Record::from_values(server.store_schema(), t.values().to_vec()).unwrap();
                server.upsert(RecordId(t.id()), &record).unwrap();
            }
            let version = server.swap_rules_refined(&baseline).unwrap();
            prop_assert_eq!(version.number(), 2);
            for probe in &probes {
                let probe = Record::from_values(server.probe_schema(), probe.values().to_vec())
                    .unwrap();
                let swapped = server.query(&probe).unwrap();
                let direct = fresh.query(&probe).unwrap();
                prop_assert_eq!(&swapped.hits, &direct.hits, "shards={}", shards);
            }
        }
    }
}

/// A served refinement round-trip: a server accumulates labels through
/// its API, refines, hot-swaps, and keeps answering at the bumped
/// version — with the report's quality floor intact.
#[test]
fn server_submit_labels_then_refine_swaps_live() {
    let data = dirty(60, 0xBEEF);
    let server = MatchServer::with_config(
        weak_engine(&data, 2),
        ServerConfig { shards: 2, cache_capacity: 16, ..ServerConfig::default() },
    );
    for t in data.billing.tuples() {
        let record = Record::from_values(server.store_schema(), t.values().to_vec()).unwrap();
        server.upsert(RecordId(t.id()), &record).unwrap();
    }

    let labels = labels_for(&data);
    let pairs: Vec<(Record, Record, bool)> = labels
        .pairs()
        .iter()
        .map(|p| {
            (
                Record::from_values(server.probe_schema(), p.left.values().to_vec()).unwrap(),
                Record::from_values(server.store_schema(), p.right.values().to_vec()).unwrap(),
                p.is_match,
            )
        })
        .collect();
    let summary = server.submit_labels(&pairs).unwrap();
    assert_eq!(summary.added, labels.len());
    assert_eq!(summary.positives, labels.positives());
    // Resubmitting the same batch is idempotent.
    let again = server.submit_labels(&pairs).unwrap();
    assert_eq!(again.added, 0);
    assert_eq!(again.total, labels.len());

    let before_version = server.version().number();
    let (version, report) = server.refine(1.0).unwrap();
    assert_eq!(version.number(), before_version + 1);
    assert!(report.after.f1() >= report.before.f1());
    assert!(!report.selected.is_empty());

    // Still serving, at the new version.
    let probe =
        Record::from_values(server.probe_schema(), data.credit.tuples()[0].values().to_vec())
            .unwrap();
    assert_eq!(server.query(&probe).unwrap().version, version);
}

/// A conflicting label rejects its whole batch atomically: nothing from
/// the batch sticks, and the store still refines from the prior state.
#[test]
fn conflicting_label_batch_is_rejected_atomically() {
    let data = dirty(30, 7);
    let server = MatchServer::new(weak_engine(&data, 1));
    let left =
        Record::from_values(server.probe_schema(), data.credit.tuples()[0].values().to_vec())
            .unwrap();
    let right =
        Record::from_values(server.store_schema(), data.billing.tuples()[0].values().to_vec())
            .unwrap();
    server.submit_labels(&[(left.clone(), right.clone(), true)]).unwrap();

    let fresh_left =
        Record::from_values(server.probe_schema(), data.credit.tuples()[1].values().to_vec())
            .unwrap();
    let err = server
        .submit_labels(&[(fresh_left, right.clone(), true), (left, right, false)])
        .unwrap_err();
    assert!(err.to_string().contains("refinement rejected"), "{err}");
    // The conflicting batch left no trace — not even its first item.
    assert_eq!(server.label_summary().total, 1);
}

/// The wire front serves the whole loop: `SubmitLabels` and `Refine`
/// frames from a `MatchClient` drive a zero-downtime refined swap on a
/// live TCP server.
#[test]
fn wire_submit_labels_and_refine_end_to_end() {
    let data = dirty(60, 0xC0FFEE);
    let server = Arc::new(MatchServer::with_config(
        weak_engine(&data, 2),
        ServerConfig { shards: 2, cache_capacity: 16, ..ServerConfig::default() },
    ));
    for t in data.billing.tuples() {
        let record = Record::from_values(server.store_schema(), t.values().to_vec()).unwrap();
        server.upsert(RecordId(t.id()), &record).unwrap();
    }
    let handle = serve(server.clone(), "127.0.0.1:0").unwrap();
    let mut client = MatchClient::connect(handle.addr()).unwrap();

    // Ship every generated label as positional wire values.
    let to_wire = |values: &[Value]| -> Vec<Option<String>> {
        values.iter().map(|v| v.as_str().map(str::to_owned)).collect()
    };
    let items: Vec<WireLabel> = labels_for(&data)
        .pairs()
        .iter()
        .map(|p| (to_wire(p.left.values()), to_wire(p.right.values()), p.is_match))
        .collect();
    let total = items.len() as u64;
    match client.request(&Request::SubmitLabels { items }).unwrap() {
        Response::SubmitLabels { added, total: held, .. } => {
            assert_eq!(added, total);
            assert_eq!(held, total);
        }
        other => panic!("expected a label summary, got {other:?}"),
    }

    let report = client.refine(1.0).unwrap();
    assert_eq!(report.version, 2, "refine bumps the serving version");
    assert!(
        f64::from_bits(report.after_f1_bits) >= f64::from_bits(report.before_f1_bits),
        "served refinement lost quality"
    );
    assert!(!report.rules.is_empty());

    // The swapped rules serve immediately over the same connection.
    let probe = &data.credit.tuples()[0];
    let answer = client.request(&Request::Query { values: to_wire(probe.values()) }).unwrap();
    match answer {
        Response::Query(q) => assert_eq!(q.version, 2),
        other => panic!("expected a query answer, got {other:?}"),
    }

    // A second refine with no new labels still answers (version moves
    // again; the selection is unchanged so quality holds).
    let second = client.refine(1.0).unwrap();
    assert_eq!(second.version, 3);

    handle.shutdown();
}
