//! The ranked-matching contract, end to end:
//!
//! * `query_ranked` returns exactly the boolean `query` hit set — at
//!   every rule version, before and after a hot swap — with calibrated
//!   scores in `[0, 1]`, sorted descending, never NaN (proptest);
//! * scores are **byte-identical** (`f64::to_bits`) across 1/2/8
//!   threads and across 1/2/8 server shards, and the sharded server's
//!   ranked answers equal the single-owner service's;
//! * `top_k` / `min_score` only truncate and filter (never reorder),
//!   a NaN threshold is a typed error, and the server's bucket cache
//!   serves consistent prefixes;
//! * the one-to-one resolver never assigns a record twice — bipartite
//!   and shared-node variants (proptest over random edge sets);
//! * `dedup_resolved` emits a valid matching: every record in at most
//!   one link, links a subset of the rule-matched pairs.

use matchrules::data::dirty::{generate_dirty, DirtyData, NoiseConfig};
use matchrules::engine::{
    resolve_one_to_one, resolve_one_to_one_shared, EngineBuilder, ExecConfig, MatchEngine, Preset,
    ScoredEdge, Threads,
};
use matchrules::server::{MatchServer, ServerConfig};
use matchrules::service::{MatchService, Record, RecordId, ServiceError};
use proptest::prelude::*;
use std::collections::BTreeSet;

const SHARD_SWEEP: [usize; 3] = [1, 2, 8];
const THREAD_SWEEP: [usize; 3] = [1, 2, 8];

/// A genuinely different rule set for the extended pair, so a swap
/// changes the deduced RCKs (and refits the score model).
const SWAPPED_RULES: &str = "\
    credit[email] = billing[email] -> credit[FN,MN,LN] <=> billing[FN,MN,LN]\n\
    credit[tel] = billing[phn] -> \
    credit[street,city,county,state,zip] <=> billing[street,city,county,state,zip]\n\
    credit[zip] = billing[zip] -> credit[city,county,state] <=> billing[city,county,state]\n\
    credit[LN] ~d billing[LN] /\\ credit[tel] = billing[phn] /\\ credit[FN] ~d billing[FN] -> \
    credit[FN,MN,LN,street,city,county,state,zip,tel,email,gender] <=> \
    billing[FN,MN,LN,street,city,county,state,zip,phn,email,gender]\n";

fn dirty(seed: u64, persons: usize) -> DirtyData {
    let shape = Preset::Extended.paper_setting();
    generate_dirty(&shape.pair, &shape.target, persons, &NoiseConfig { seed, ..Default::default() })
}

/// The extended engine with a fitted score model (statistics measured
/// from the generated data, exactly like the bench workload).
fn fitted_engine(data: &DirtyData, threads: usize) -> MatchEngine {
    Preset::Extended
        .builder()
        .top_k(5)
        .statistics_from(&data.credit, &data.billing)
        .threads(threads)
        .build()
        .expect("preset engine builds")
}

fn filled_service(data: &DirtyData, threads: usize) -> MatchService {
    let mut service = MatchService::new(fitted_engine(data, threads));
    for t in data.billing.tuples() {
        let record = Record::from_values(service.store_schema().clone(), t.values().to_vec())
            .expect("store record builds");
        service.upsert(RecordId(t.id()), &record).unwrap();
    }
    service
}

fn filled_server(data: &DirtyData, shards: usize, threads: usize) -> MatchServer {
    let server = MatchServer::with_config(
        fitted_engine(data, threads),
        ServerConfig {
            shards,
            cache_capacity: 32,
            exec: ExecConfig { threads: Threads::Fixed(threads) },
        },
    );
    let batch: Vec<(RecordId, Record)> = data
        .billing
        .tuples()
        .iter()
        .map(|t| {
            let record = Record::from_values(server.store_schema(), t.values().to_vec()).unwrap();
            (RecordId(t.id()), record)
        })
        .collect();
    server.upsert_batch(&batch).unwrap();
    server
}

fn probe_for(service: &MatchService, t: &matchrules::data::relation::Tuple) -> Record {
    Record::from_values(service.probe_schema().clone(), t.values().to_vec()).unwrap()
}

/// Asserts the ranked contract for one service at its current rule
/// version: same hit set as boolean, monotone scores in `[0, 1]`, no
/// NaN.
fn assert_ranked_contract(service: &MatchService, data: &DirtyData) {
    for t in data.credit.tuples() {
        let probe = probe_for(service, t);
        let boolean = service.query(&probe).unwrap();
        let ranked = service.query_ranked(&probe, usize::MAX, f64::NEG_INFINITY).unwrap();
        let boolean_ids: BTreeSet<u64> = boolean.hits.iter().map(|h| h.id.0).collect();
        let ranked_ids: BTreeSet<u64> = ranked.hits.iter().map(|h| h.id.0).collect();
        assert_eq!(ranked_ids, boolean_ids, "ranked hit set diverged for probe {}", t.id());
        assert_eq!(ranked.version, boolean.version);
        for pair in ranked.hits.windows(2) {
            assert!(pair[0].score >= pair[1].score, "scores must be sorted descending");
        }
        for h in &ranked.hits {
            assert!(!h.score.is_nan(), "a score must never be NaN");
            assert!((0.0..=1.0).contains(&h.score), "score {} out of [0,1]", h.score);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The ranked hit set equals the boolean hit set at every rule
    /// version — v1, and v2 after a hot swap refits the score model.
    #[test]
    fn ranked_hit_set_equals_boolean_at_every_version(
        seed in 0u64..100_000,
        persons in 8usize..20,
    ) {
        let data = dirty(seed, persons);
        let mut service = filled_service(&data, 2);
        assert_ranked_contract(&service, &data);
        let v2 = service.swap_rules(SWAPPED_RULES).unwrap();
        prop_assert_eq!(v2.number(), 2);
        assert_ranked_contract(&service, &data);
    }

    /// Scores are byte-identical across 1/2/8 engine threads and across
    /// 1/2/8 server shards; the sharded server's ranked answers equal
    /// the single-owner service's hit for hit, bit for bit.
    #[test]
    fn scores_identical_across_threads_and_shards(
        seed in 0u64..100_000,
        persons in 8usize..16,
    ) {
        let data = dirty(seed, persons);
        let baseline = filled_service(&data, 1);
        let reference: Vec<Vec<(u64, usize, u64)>> = data
            .credit
            .tuples()
            .iter()
            .map(|t| {
                let probe = probe_for(&baseline, t);
                baseline
                    .query_ranked(&probe, usize::MAX, 0.0)
                    .unwrap()
                    .hits
                    .iter()
                    .map(|h| (h.id.0, h.key, h.score.to_bits()))
                    .collect()
            })
            .collect();
        for threads in THREAD_SWEEP {
            let service = filled_service(&data, threads);
            for (t, expected) in data.credit.tuples().iter().zip(&reference) {
                let probe = probe_for(&service, t);
                let got: Vec<(u64, usize, u64)> = service
                    .query_ranked(&probe, usize::MAX, 0.0)
                    .unwrap()
                    .hits
                    .iter()
                    .map(|h| (h.id.0, h.key, h.score.to_bits()))
                    .collect();
                prop_assert_eq!(&got, expected, "scores diverged at {} threads", threads);
            }
        }
        for shards in SHARD_SWEEP {
            let server = filled_server(&data, shards, 2);
            for (t, expected) in data.credit.tuples().iter().zip(&reference) {
                let probe =
                    Record::from_values(server.probe_schema(), t.values().to_vec()).unwrap();
                let got: Vec<(u64, usize, u64)> = server
                    .query_ranked(&probe, usize::MAX, 0.0)
                    .unwrap()
                    .hits
                    .iter()
                    .map(|h| (h.id.0, h.key, h.score.to_bits()))
                    .collect();
                prop_assert_eq!(&got, expected, "scores diverged at {} shards", shards);
            }
        }
    }

    /// The resolver emits a matching: no record index appears twice —
    /// per side in the bipartite variant, across both sides in the
    /// shared-node (dedup) variant. Selected indices always point into
    /// the input edge list.
    #[test]
    fn resolver_never_assigns_a_record_twice(
        edges in proptest::collection::vec(
            (0usize..12, 0usize..12, 0u32..1000),
            0..40,
        ),
        threshold in 0u32..500,
    ) {
        let edges: Vec<ScoredEdge> = edges
            .into_iter()
            .map(|(l, r, s)| ScoredEdge { left: l, right: r, score: s as f64 / 1000.0 })
            .collect();
        let min_score = threshold as f64 / 1000.0;

        let selected = resolve_one_to_one(&edges, min_score);
        let mut lefts = BTreeSet::new();
        let mut rights = BTreeSet::new();
        for &i in &selected {
            let e = &edges[i];
            prop_assert!(e.score >= min_score);
            prop_assert!(lefts.insert(e.left), "left {} assigned twice", e.left);
            prop_assert!(rights.insert(e.right), "right {} assigned twice", e.right);
        }

        let selected = resolve_one_to_one_shared(&edges, min_score);
        let mut nodes = BTreeSet::new();
        for &i in &selected {
            let e = &edges[i];
            prop_assert!(e.score >= min_score);
            prop_assert!(nodes.insert(e.left), "record {} assigned twice", e.left);
            prop_assert!(nodes.insert(e.right), "record {} assigned twice", e.right);
        }
    }

    /// `dedup_resolved` emits a valid matching over the rule-matched
    /// pairs: links are a subset of the report's pairs, every record is
    /// in at most one link, and every link clears the threshold.
    #[test]
    fn dedup_resolved_is_a_valid_matching(seed in 0u64..100_000, persons in 10usize..40) {
        let data = dirty(seed, persons);
        let shape = Preset::Extended.paper_setting();
        let billing = shape.pair.right().as_ref().clone();
        let engine = EngineBuilder::new()
            .dedup_schema(billing)
            .md_text(
                "billing[phn] = billing[phn] /\\ billing[LN] ~d billing[LN] -> \
                 billing[FN,LN,phn] <=> billing[FN,LN,phn]\n\
                 billing[email] = billing[email] /\\ billing[zip] = billing[zip] -> \
                 billing[FN,LN,phn] <=> billing[FN,LN,phn]\n",
            )
            .target(&["FN", "LN", "phn"], &["FN", "LN", "phn"])
            .build()
            .expect("reflexive billing engine builds");
        let resolved = engine.dedup_resolved(&data.billing, 0.0).expect("dedup resolves");
        let matched: BTreeSet<(usize, usize)> =
            resolved.report.pairs().iter().map(|p| (p.left, p.right)).collect();
        let mut seen = BTreeSet::new();
        for link in &resolved.links {
            prop_assert!(
                matched.contains(&(link.left, link.right)),
                "link ({}, {}) is not a rule-matched pair", link.left, link.right
            );
            prop_assert!(!link.score.is_nan());
            prop_assert!(seen.insert(link.left), "record {} linked twice", link.left);
            prop_assert!(seen.insert(link.right), "record {} linked twice", link.right);
        }
        // The boolean dedup finds the same pairs; resolution only selects.
        let plain = engine.dedup(&data.billing).expect("plain dedup");
        let plain_pairs: BTreeSet<(usize, usize)> =
            plain.report.pairs().iter().map(|p| (p.left, p.right)).collect();
        prop_assert_eq!(matched, plain_pairs);
    }
}

/// `top_k` truncates the ranked order (prefix property), `min_score`
/// filters it, and a NaN threshold is a typed error on both the
/// single-owner service and the sharded server.
#[test]
fn top_k_truncates_and_nan_threshold_is_an_error() {
    let data = dirty(7, 12);
    let service = filled_service(&data, 2);
    let server = filled_server(&data, 2, 2);
    let mut exercised = false;
    for t in data.credit.tuples() {
        let probe = probe_for(&service, t);
        let full = service.query_ranked(&probe, usize::MAX, 0.0).unwrap();
        let one = service.query_ranked(&probe, 1, 0.0).unwrap();
        assert_eq!(one.hits.as_slice(), &full.hits[..full.hits.len().min(1)]);
        if full.hits.len() > 1 {
            exercised = true;
            // A threshold above the best score empties the answer.
            let strict = service.query_ranked(&probe, usize::MAX, 1.1).unwrap();
            assert!(strict.hits.is_empty());
            // Server-side: `top_k` 5 and 8 share the 8-bucket cache
            // entry, and the smaller request serves a prefix of the
            // larger answer.
            let server_probe =
                Record::from_values(server.probe_schema(), t.values().to_vec()).unwrap();
            let wide = server.query_ranked(&server_probe, 8, 0.0).unwrap();
            let narrow = server.query_ranked(&server_probe, 5, 0.0).unwrap();
            assert_eq!(narrow.hits.as_slice(), &wide.hits[..wide.hits.len().min(5)]);
        }
        assert!(matches!(
            service.query_ranked(&probe, 5, f64::NAN),
            Err(ServiceError::InvalidThreshold)
        ));
        let server_probe = Record::from_values(server.probe_schema(), t.values().to_vec()).unwrap();
        assert!(matches!(
            server.query_ranked(&server_probe, 5, f64::NAN),
            Err(ServiceError::InvalidThreshold)
        ));
    }
    assert!(exercised, "at least one probe should have multiple hits");
    let stats = server.stats();
    assert!(stats.cache_hits > 0, "repeat ranked queries should hit the bucket cache");
}

/// The ranked path round-trips over TCP: `MatchClient::query_ranked`
/// returns the server's answer bit-exactly (ids, fired keys, score
/// bits, counters, version), and a NaN threshold comes back as a typed
/// server error without poisoning the connection.
#[test]
fn ranked_round_trips_over_tcp() {
    use matchrules::server::net::serve;
    use matchrules::server::{ClientError, MatchClient};
    use std::sync::Arc;

    let data = dirty(0xD00D, 60);
    let server = Arc::new(filled_server(&data, 2, 1));
    let handle = serve(server.clone(), "127.0.0.1:0").unwrap();
    let mut client = MatchClient::connect(handle.addr()).unwrap();

    let attrs: Vec<String> = client.probe_schema().attributes.clone();
    let mut exercised = 0usize;
    for t in data.credit.tuples().iter().take(40) {
        let fields: Vec<(&str, &str)> = attrs
            .iter()
            .zip(t.values())
            .filter_map(|(a, v)| v.as_str().map(|v| (a.as_str(), v)))
            .collect();
        let wire = client.query_ranked(&fields, 3, 0.0).unwrap();
        let probe = Record::from_values(server.probe_schema(), t.values().to_vec()).unwrap();
        let direct = server.query_ranked(&probe, 3, 0.0).unwrap();
        assert_eq!(wire.version, direct.version.number());
        assert_eq!(wire.candidates, direct.candidates as u64);
        assert_eq!(wire.key_evals, direct.key_evals as u64);
        assert_eq!(wire.hits.len(), direct.hits.len());
        for (w, d) in wire.hits.iter().zip(&direct.hits) {
            assert_eq!(w.id, d.id.0);
            assert_eq!(w.key as usize, d.key);
            assert_eq!(w.score_bits, d.score.to_bits(), "scores travel bit-exact");
        }
        exercised += wire.hits.len();
    }
    assert!(exercised > 0, "some probes should rank hits over the wire");

    // A NaN threshold is a typed server error, not a dead connection.
    let t = &data.credit.tuples()[0];
    let fields: Vec<(&str, &str)> = attrs
        .iter()
        .zip(t.values())
        .filter_map(|(a, v)| v.as_str().map(|v| (a.as_str(), v)))
        .collect();
    let err = client.query_ranked(&fields, 3, f64::NAN).unwrap_err();
    assert!(matches!(err, ClientError::Server { .. }), "{err:?}");
    assert!(client.query_ranked(&fields, 3, 0.0).is_ok());
    handle.shutdown();
}
