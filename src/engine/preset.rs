//! The paper's two settings as engine presets — proof that the figures
//! are just one configuration of the general engine.
//!
//! This module (together with `matchrules_core::paper`, which owns the
//! schema/MD text) is the **only** place the paper's attribute names
//! appear: the manual baselines below are inherently tied to them, being
//! the paper's hand-chosen expert configurations.

use crate::engine::builder::EngineBuilder;
use matchrules_core::paper;
use matchrules_core::schema::SchemaPair;
use matchrules_matcher::sortkey::{KeyField, SortKey};

/// A ready-made paper configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// Example 1.1: the 9/9-attribute `credit`/`billing` schemas with
    /// Σc = {ϕ1, ϕ2, ϕ3} and the 5-attribute identity lists.
    Example11,
    /// The §6 evaluation setting: extended 13/21-attribute schemas,
    /// 11-attribute identity lists, 7 MDs.
    Extended,
}

impl Preset {
    /// An [`EngineBuilder`] seeded with the preset's schemas (kind
    /// metadata attached), operator table, MDs and target — ready to
    /// customize (`top_k`, `window`, statistics) and compile.
    pub fn builder(self) -> EngineBuilder {
        let setting = self.paper_setting();
        EngineBuilder::from_parts(setting.pair, setting.ops, setting.sigma, setting.target)
    }

    /// The raw paper setting (schema pair, operator table, Σ, target) —
    /// for callers that need the shapes without compiling a plan, e.g.
    /// generating synthetic data over the preset's schemas.
    pub fn paper_setting(self) -> paper::PaperSetting {
        match self {
            Preset::Example11 => paper::example_1_1(),
            Preset::Extended => paper::extended(),
        }
    }
}

/// The fixed windowing keys used by Exp-2 and Exp-3 ("the same set of
/// windowing keys were used in these experiments to make the evaluation
/// fair"): one name/zip pass and one phone/e-mail pass, over the extended
/// preset pair.
pub fn standard_sort_keys(pair: &SchemaPair) -> Vec<SortKey> {
    let l = |n: &str| pair.left().attr(n).expect("extended preset schema");
    let r = |n: &str| pair.right().attr(n).expect("extended preset schema");
    vec![
        SortKey::new(vec![
            KeyField::soundex(l("LN"), r("LN")),
            KeyField::text(l("FN"), r("FN"), 2),
            KeyField::text(l("zip"), r("zip"), 3),
        ]),
        SortKey::new(vec![
            KeyField::digits(l("tel"), r("phn"), 0),
            KeyField::text(l("email"), r("email"), 6),
        ]),
    ]
}

/// The Exp-4 manual blocking key: "three attributes manually chosen", one
/// being the Soundex-encoded name — a plausible expert choice of name +
/// city + state, over the extended preset pair.
pub fn manual_block_key(pair: &SchemaPair) -> SortKey {
    let l = |n: &str| pair.left().attr(n).expect("extended preset schema");
    let r = |n: &str| pair.right().attr(n).expect("extended preset schema");
    SortKey::new(vec![
        KeyField::soundex(l("LN"), r("LN")),
        KeyField::text(l("city"), r("city"), 6),
        KeyField::text(l("state"), r("state"), 2),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_compile() {
        let plan = Preset::Example11.builder().compile().unwrap();
        assert_eq!(plan.sigma().len(), 3);
        assert!(!plan.rcks().is_empty());
        let plan = Preset::Extended.builder().top_k(5).compile().unwrap();
        assert_eq!(plan.sigma().len(), 7);
        assert_eq!(plan.rcks().len(), 5);
        assert!(plan.describe().contains("7 MDs"));
    }

    #[test]
    fn manual_keys_build_over_the_extended_pair() {
        let plan = Preset::Extended.builder().compile().unwrap();
        assert_eq!(standard_sort_keys(plan.pair()).len(), 2);
        assert_eq!(manual_block_key(plan.pair()).fields().len(), 3);
    }
}
