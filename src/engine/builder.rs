//! [`EngineBuilder`]: collect configuration, compile a [`MatchPlan`].

use crate::engine::plan::MatchPlan;
use crate::engine::report::MatchEngine;
use matchrules_core::cost::CostModel;
use matchrules_core::dependency::MatchingDependency;
use matchrules_core::error::CoreError;
use matchrules_core::negation::NegativeRule;
use matchrules_core::operators::{OperatorId, OperatorTable};
use matchrules_core::parser::parse_md_set;
use matchrules_core::rck::find_rcks;
use matchrules_core::relative_key::Target;
use matchrules_core::schema::{AttrKind, Schema, SchemaPair, Side};
use matchrules_data::eval::{paper_registry, KernelClass, RuntimeOps};
use matchrules_data::relation::Relation;
use matchrules_matcher::fellegi_sunter::rck_comparison_vector;
use matchrules_matcher::pipeline::{apply_length_stats, rck_block_key, rck_sort_keys};
use matchrules_matcher::scoring::{ScoreConfig, ScoreModel};
use matchrules_matcher::windowing::multi_pass_window;
use matchrules_runtime::{ExecConfig, Threads};
use matchrules_simdist::ops::OpRegistry;
use std::fmt;
use std::sync::Arc;

/// Errors raised while building or executing a match engine.
#[derive(Debug)]
pub enum EngineError {
    /// A reasoning-core error (schema, parser, operator resolution…).
    Core(CoreError),
    /// The builder was compiled without schemas.
    MissingSchemas,
    /// The builder was compiled without target identity lists.
    MissingTarget,
    /// A relation handed to the engine does not instantiate the plan's
    /// schemas.
    SchemaMismatch {
        /// Name/arity of the schema the plan expects.
        expected: String,
        /// Name/arity of the schema the relation carries.
        got: String,
    },
    /// The plan deduced no keys, so the requested derived artifact
    /// (sort/block key) does not exist.
    NoKeys,
    /// A configuration value is out of its valid range.
    InvalidConfig {
        /// Human-readable description.
        message: String,
    },
    /// Building or maintaining a [`MatchIndex`](crate::engine::MatchIndex)
    /// failed (duplicate tuple ids, arity mismatch…).
    Index(matchrules_matcher::index::IndexError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Core(e) => write!(f, "{e}"),
            EngineError::MissingSchemas => {
                write!(f, "engine builder needs schemas (schemas/schema_pair/dedup_schema)")
            }
            EngineError::MissingTarget => {
                write!(f, "engine builder needs target identity lists (target)")
            }
            EngineError::SchemaMismatch { expected, got } => {
                write!(f, "relation schema {got} does not instantiate the plan schema {expected}")
            }
            EngineError::NoKeys => {
                write!(f, "the plan deduced no RCKs, so no derived keys exist")
            }
            EngineError::InvalidConfig { message } => {
                write!(f, "invalid engine configuration: {message}")
            }
            EngineError::Index(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<CoreError> for EngineError {
    fn from(e: CoreError) -> Self {
        EngineError::Core(e)
    }
}

impl From<matchrules_matcher::index::IndexError> for EngineError {
    fn from(e: matchrules_matcher::index::IndexError) -> Self {
        EngineError::Index(e)
    }
}

/// Whether a relation's schema instantiates a plan schema: same name and
/// the same attributes (names and domains, in order). `AttrKind` metadata
/// is deliberately ignored — kinds steer plan *compilation* (key
/// encodings), not column indexing, and may legitimately differ between a
/// measured relation and a pair rebuilt by kind overrides.
pub(crate) fn schemas_compatible(a: &Schema, b: &Schema) -> bool {
    a.name() == b.name()
        && a.arity() == b.arity()
        && a.attributes()
            .iter()
            .zip(b.attributes())
            .all(|(x, y)| x.name() == y.name() && x.domain() == y.domain())
}

/// Per-attribute average lengths measured on concrete relations, kept
/// with the schemas they were measured on for compile-time validation —
/// plus a bounded deterministic tuple sample of each relation, retained
/// so `compile()` can fit the plan's [`ScoreModel`] (and a rule hot-swap
/// can refit it on the *same* sample).
struct MeasuredStats {
    left_schema: Arc<Schema>,
    left_lens: Vec<f64>,
    right_schema: Arc<Schema>,
    right_lens: Vec<f64>,
    left_sample: Relation,
    right_sample: Relation,
}

/// Per-side cap on the retained scoring sample. Sampling is a
/// deterministic stride (every k-th tuple), so recompiles see the same
/// sample and produce byte-identical score models.
const SCORE_SAMPLE_CAP: usize = 512;

fn sample_relation(rel: &Relation) -> Relation {
    let step = (rel.len() / SCORE_SAMPLE_CAP).max(1);
    let mut out = Relation::new(rel.schema().clone());
    for t in rel.tuples().iter().step_by(step).take(SCORE_SAMPLE_CAP) {
        out.push(t.clone());
    }
    out
}

/// Builder collecting everything the reasoning needs, compiled once into a
/// [`MatchPlan`] via [`EngineBuilder::compile`] (or straight into a
/// [`MatchEngine`] via [`EngineBuilder::build`]).
pub struct EngineBuilder {
    pair: Option<SchemaPair>,
    ops: OperatorTable,
    registry: OpRegistry,
    md_texts: Vec<String>,
    mds: Vec<MatchingDependency>,
    target_names: Option<(Vec<String>, Vec<String>)>,
    target: Option<Target>,
    negatives: Vec<NegativeRule>,
    kind_overrides: Vec<(Side, String, AttrKind)>,
    top_k: usize,
    window: usize,
    weights: (f64, f64, f64),
    stats: Option<MeasuredStats>,
    exec: ExecConfig,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl EngineBuilder {
    /// An empty builder with the standard operator registry, top-k = 5 and
    /// window = 10 (the paper's experimental defaults).
    pub fn new() -> Self {
        EngineBuilder {
            pair: None,
            ops: OperatorTable::new(),
            registry: paper_registry(),
            md_texts: Vec::new(),
            mds: Vec::new(),
            target_names: None,
            target: None,
            negatives: Vec::new(),
            kind_overrides: Vec::new(),
            top_k: 5,
            window: 10,
            weights: (1.0, 1.0, 1.0),
            stats: None,
            exec: ExecConfig::default(),
        }
    }

    /// Seeds the builder from an already-compiled reasoning setting —
    /// how the paper presets route through the builder.
    pub fn from_parts(
        pair: SchemaPair,
        ops: OperatorTable,
        sigma: Vec<MatchingDependency>,
        target: Target,
    ) -> Self {
        let mut b = Self::new();
        b.pair = Some(pair);
        b.ops = ops;
        b.mds = sigma;
        b.target = Some(target);
        b
    }

    /// Seeds a builder from an already-compiled plan, **without** its MD
    /// set: the schema pair, the interned operator table, the target, the
    /// negative rules and the tuning knobs (`top_k`, window, cost
    /// weights, exec) are preserved, while the rules are expected to
    /// arrive fresh via [`EngineBuilder::md_text`] /
    /// [`EngineBuilder::mds`]. This is the rule hot-swap hook: recompile
    /// a *new* rule set against the *existing* schema/operator world, so
    /// serving state keyed to the schemas (record stores, indices)
    /// survives rule iteration.
    ///
    /// Measured length statistics
    /// ([`EngineBuilder::statistics_from`]) are carried over from the
    /// plan, so the recompile ranks keys under the same cost model as
    /// the original. The operator *registry* is the standard one — pass
    /// the original through [`EngineBuilder::operators`] when it was
    /// customized (as
    /// [`MatchService::swap_rules`](crate::service::MatchService::swap_rules)
    /// does).
    pub fn from_plan(plan: &MatchPlan) -> Self {
        let mut b = Self::new();
        b.pair = Some(plan.pair().clone());
        b.ops = plan.ops().clone();
        b.target = Some(plan.target().clone());
        b.negatives = plan.negatives().to_vec();
        b.top_k = plan.top_k();
        b.window = plan.window();
        b.weights = plan.cost_weights();
        b.exec = plan.exec();
        if let Some((left_lens, right_lens)) = plan.measured_lengths() {
            let (left_sample, right_sample) = match plan.score_sample() {
                Some((l, r)) => (l.clone(), r.clone()),
                None => (
                    Relation::new(plan.pair().left().clone()),
                    Relation::new(plan.pair().right().clone()),
                ),
            };
            b.stats = Some(MeasuredStats {
                left_schema: plan.pair().left().clone(),
                left_lens: left_lens.to_vec(),
                right_schema: plan.pair().right().clone(),
                right_lens: right_lens.to_vec(),
                left_sample,
                right_sample,
            });
        }
        b
    }

    /// Sets the two (distinct) relation schemas.
    #[must_use]
    pub fn schemas(mut self, left: Schema, right: Schema) -> Self {
        self.pair = Some(SchemaPair::new(Arc::new(left), Arc::new(right)));
        self
    }

    /// Sets an existing schema pair.
    #[must_use]
    pub fn schema_pair(mut self, pair: SchemaPair) -> Self {
        self.pair = Some(pair);
        self
    }

    /// Deduplication within one relation: the reflexive pair `(R, R)`.
    #[must_use]
    pub fn dedup_schema(mut self, schema: Schema) -> Self {
        self.pair = Some(SchemaPair::reflexive(Arc::new(schema)));
        self
    }

    /// Replaces the operator registry binding symbolic operators to
    /// executable metrics (defaults to the standard registry plus `≈d`).
    #[must_use]
    pub fn operators(mut self, registry: OpRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Replaces the interned operator *table* the plan's `OperatorId`s
    /// resolve against. The refinement loop uses this to deploy θ-variant
    /// rules: it extends the serving plan's table (interning is
    /// append-only, so existing ids keep their meaning) and compiles the
    /// selected MDs against the extension. Every symbol must still have an
    /// executable binding in the registry — [`EngineBuilder::compile`]
    /// validates that.
    #[must_use]
    pub fn operator_table(mut self, ops: OperatorTable) -> Self {
        self.ops = ops;
        self
    }

    /// Adds MDs in the textual syntax (may be called repeatedly; operator
    /// symbols are interned on compile).
    #[must_use]
    pub fn md_text(mut self, text: &str) -> Self {
        self.md_texts.push(text.to_owned());
        self
    }

    /// Adds one programmatic MD.
    #[must_use]
    pub fn md(mut self, md: MatchingDependency) -> Self {
        self.mds.push(md);
        self
    }

    /// Adds programmatic MDs.
    #[must_use]
    pub fn mds(mut self, mds: impl IntoIterator<Item = MatchingDependency>) -> Self {
        self.mds.extend(mds);
        self
    }

    /// Sets the target identity lists `(Y1, Y2)` by attribute name.
    #[must_use]
    pub fn target(mut self, y1: &[&str], y2: &[&str]) -> Self {
        self.target_names = Some((
            y1.iter().map(|s| (*s).to_owned()).collect(),
            y2.iter().map(|s| (*s).to_owned()).collect(),
        ));
        self
    }

    /// Sets an already-resolved target.
    #[must_use]
    pub fn target_ids(mut self, target: Target) -> Self {
        self.target = Some(target);
        self
    }

    /// Adds a §8 negative rule (vetoed pairs never match).
    #[must_use]
    pub fn negative_rule(mut self, rule: NegativeRule) -> Self {
        self.negatives.push(rule);
        self
    }

    /// Overrides the [`AttrKind`] of one attribute (applied at compile).
    #[must_use]
    pub fn attr_kind(mut self, side: Side, attr: &str, kind: AttrKind) -> Self {
        self.kind_overrides.push((side, attr.to_owned(), kind));
        self
    }

    /// Number of RCKs to deduce (the match key union size).
    #[must_use]
    pub fn top_k(mut self, k: usize) -> Self {
        self.top_k = k;
        self
    }

    /// Sliding-window size for windowed candidate generation.
    #[must_use]
    pub fn window(mut self, w: usize) -> Self {
        self.window = w;
        self
    }

    /// Cost-model weights `(w1, w2, w3)` — diversity, length, accuracy.
    #[must_use]
    pub fn cost_weights(mut self, w1: f64, w2: f64, w3: f64) -> Self {
        self.weights = (w1, w2, w3);
        self
    }

    /// Execution configuration: how many threads the engine's runtime
    /// pool uses (defaults to `Threads::Auto`, the hardware
    /// parallelism). Parallel output is byte-identical to serial.
    #[must_use]
    pub fn exec(mut self, exec: ExecConfig) -> Self {
        self.exec = exec;
        self
    }

    /// Shorthand for [`EngineBuilder::exec`] with a fixed thread count.
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        self.exec = ExecConfig { threads: Threads::Fixed(n) };
        self
    }

    /// Measures per-attribute average lengths on concrete instances,
    /// feeding the cost model's `lt` term (optional — the plan compiles
    /// with uniform statistics otherwise). The relations must instantiate
    /// the builder's schemas; this is validated at compile.
    #[must_use]
    pub fn statistics_from(mut self, left: &Relation, right: &Relation) -> Self {
        self.stats = Some(MeasuredStats {
            left_schema: left.schema().clone(),
            left_lens: left.avg_lengths(),
            right_schema: right.schema().clone(),
            right_lens: right.avg_lengths(),
            left_sample: sample_relation(left),
            right_sample: sample_relation(right),
        });
        self
    }

    /// Compiles the plan: applies kind overrides, parses MDs, validates
    /// operator bindings, builds the cost model, runs `findRCKs`, and
    /// derives the kind-driven sort/block keys.
    pub fn compile(self) -> Result<MatchPlan, EngineError> {
        if self.window < 2 {
            return Err(EngineError::InvalidConfig {
                message: format!("window must hold at least two tuples, got {}", self.window),
            });
        }
        if self.exec.threads == Threads::Fixed(0) {
            return Err(EngineError::InvalidConfig {
                message: "threads must be at least 1 (use Threads::Auto for the hardware \
                          parallelism)"
                    .to_owned(),
            });
        }
        if self.top_k == 0 {
            return Err(EngineError::InvalidConfig {
                message: "top_k must be at least 1: a plan with no RCKs derives no match, \
                          sort or block keys and silently matches nothing (for the schema \
                          pair and target alone, use Preset::paper_setting or keep the \
                          builder uncompiled)"
                    .to_owned(),
            });
        }
        let mut pair = self.pair.ok_or(EngineError::MissingSchemas)?;

        // Apply kind overrides by rebuilding the affected schemas.
        if !self.kind_overrides.is_empty() {
            let mut left = pair.left().as_ref().clone();
            let mut right = pair.right().as_ref().clone();
            let reflexive = Arc::ptr_eq(pair.left(), pair.right());
            for (side, attr, kind) in &self.kind_overrides {
                match side {
                    Side::Left => left = left.with_attr_kind(attr, *kind)?,
                    Side::Right => right = right.with_attr_kind(attr, *kind)?,
                }
                if reflexive {
                    // Keep both sides of a dedup pair identical.
                    match side {
                        Side::Left => right = right.with_attr_kind(attr, *kind)?,
                        Side::Right => left = left.with_attr_kind(attr, *kind)?,
                    }
                }
            }
            pair = SchemaPair::new(Arc::new(left), Arc::new(right));
        }

        // Parse textual MDs (interning operators) and collect programmatic
        // ones, re-validated against the (possibly rebuilt) pair.
        let mut ops = self.ops;
        let mut sigma: Vec<MatchingDependency> = Vec::new();
        for text in &self.md_texts {
            sigma.extend(parse_md_set(text, &pair, &mut ops)?);
        }
        for md in self.mds {
            // Programmatic MDs carry raw `OperatorId`s that are only
            // meaningful against *this* builder's operator table; an MD
            // interned into a foreign table would silently evaluate the
            // wrong operator (or index out of bounds at query time).
            // Ids can't be semantically verified, but out-of-range ones
            // are certain misuse — fail here, not in a hot loop.
            for atom in md.lhs() {
                if atom.op.0 as usize >= ops.len() {
                    return Err(EngineError::InvalidConfig {
                        message: format!(
                            "MD atom uses operator id {} but the plan's operator table holds \
                             only {} operators — programmatic MDs must be built against the \
                             plan's own operator table (e.g. via MatchPlan::ops or md_text)",
                            atom.op.0,
                            ops.len()
                        ),
                    });
                }
            }
            sigma.push(MatchingDependency::new(&pair, md.lhs().to_vec(), md.rhs().to_vec())?);
        }

        // Resolve the target.
        let target = match (self.target, &self.target_names) {
            (Some(t), _) => t,
            (None, Some((y1, y2))) => {
                let y1: Vec<&str> = y1.iter().map(String::as_str).collect();
                let y2: Vec<&str> = y2.iter().map(String::as_str).collect();
                Target::by_names(&pair, &y1, &y2)?
            }
            (None, None) => return Err(EngineError::MissingTarget),
        };

        // Fail at compile time when a symbolic operator has no executable
        // binding — not at the first match call. The resolved runtime also
        // drives the score-model fit below.
        let runtime = RuntimeOps::resolve(&ops, &self.registry)?;
        // Per-operator kernel classes, frozen into the plan: `describe()`
        // reports them and `MatchIndex` builds the matching anchor kinds.
        let atom_classes: Vec<KernelClass> =
            (0..ops.len()).map(|i| runtime.kernel_class(OperatorId(i as u16))).collect();

        // Cost model: configured weights plus measured `lt` statistics
        // (after checking the measured relations instantiate the schemas —
        // mismatched statistics would silently mis-rank RCKs).
        let (w1, w2, w3) = self.weights;
        let mut cost = CostModel::new(w1, w2, w3);
        if let Some(stats) = &self.stats {
            for (measured, expected) in
                [(&stats.left_schema, pair.left()), (&stats.right_schema, pair.right())]
            {
                if !schemas_compatible(measured, expected) {
                    return Err(EngineError::SchemaMismatch {
                        expected: format!("{}/{}", expected.name(), expected.arity()),
                        got: format!("{}/{}", measured.name(), measured.arity()),
                    });
                }
            }
            apply_length_stats(&mut cost, &sigma, &target, &stats.left_lens, &stats.right_lens);
        }

        let outcome = find_rcks(&sigma, &target, self.top_k, &mut cost);
        let sort_keys = rck_sort_keys(&pair, &outcome.keys);
        let block_key =
            if outcome.keys.is_empty() { None } else { Some(rck_block_key(&pair, &outcome.keys)) };
        // Per-key cost under the final model state (the `ct` counters as
        // findRCKs left them) — the ranking evidence `describe()` and
        // match explanations report.
        let rck_costs: Vec<f64> = outcome
            .keys
            .iter()
            .map(|key| key.atoms().iter().map(|a| cost.cost(a.left, a.right)).sum())
            .collect();

        // Compile the calibrated score model alongside the keys: the
        // comparison vector is the union of the RCK atoms; when the
        // builder measured statistics, EM fits m/u on windowed candidate
        // pairs from the retained sample (serial and deterministic), and
        // degenerate samples fall back to the clamped prior.
        let score_atoms = rck_comparison_vector(&outcome.keys);
        let (score_model, score_sample) = match &self.stats {
            Some(stats) if !stats.left_sample.is_empty() && !stats.right_sample.is_empty() => {
                let candidates = multi_pass_window(
                    &stats.left_sample,
                    &stats.right_sample,
                    &sort_keys,
                    self.window,
                );
                let model = ScoreModel::fit_or_prior(
                    score_atoms,
                    &stats.left_sample,
                    &stats.right_sample,
                    &candidates,
                    &runtime,
                    &ScoreConfig::default(),
                );
                (model, Some((stats.left_sample.clone(), stats.right_sample.clone())))
            }
            _ => (ScoreModel::prior(score_atoms, &ScoreConfig::default().em), None),
        };

        Ok(MatchPlan::new(
            pair,
            ops,
            sigma,
            target,
            outcome.keys,
            rck_costs,
            atom_classes,
            outcome.complete,
            self.negatives,
            sort_keys,
            block_key,
            self.window,
            self.top_k,
            self.weights,
            self.stats.map(|s| (s.left_lens, s.right_lens)),
            score_model,
            score_sample,
            self.exec,
        ))
    }

    /// Compiles the plan and resolves its operators into a ready
    /// [`MatchEngine`].
    pub fn build(self) -> Result<MatchEngine, EngineError> {
        let registry = self.registry.clone();
        let plan = self.compile()?;
        MatchEngine::from_plan(plan, &registry)
    }
}
