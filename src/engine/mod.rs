//! The schema-agnostic match engine: **compile once, match anywhere**.
//!
//! The paper's reasoning (MDClosure → relative candidate keys) is generic
//! over schemas and similarity operators; this module packages it as a
//! configurable rule engine:
//!
//! 1. [`EngineBuilder`] collects a schema pair (with per-attribute
//!    [`AttrKind`](matchrules_core::schema::AttrKind) metadata), an
//!    operator registry, MDs (textual or programmatic), and the target
//!    identity lists;
//! 2. [`EngineBuilder::compile`] runs the reasoning **once**, producing an
//!    immutable [`MatchPlan`] — the deduced top-k RCKs, the sort/block
//!    keys derived from them via attribute kinds, and the cost model's
//!    provenance;
//! 3. a cheap, reusable [`MatchEngine`] executes the plan over any
//!    [`Relation`](matchrules_data::relation::Relation) pair instantiating
//!    the schemas — [`MatchEngine::match_pairs`], [`MatchEngine::dedup`],
//!    [`MatchEngine::block`], [`MatchEngine::window`] — returning
//!    structured [`MatchReport`]s.
//!
//! Next to batch matching and dedup there is a third execution mode:
//! [`MatchEngine::index`] compiles the plan's RCKs into a [`MatchIndex`]
//! (per-RCK inverted indices — exact buckets for equality atoms, q-gram
//! posting lists for edit atoms, derived-key buckets for phonetic and
//! normalizing atoms, token posting lists with a sound ratio prefilter
//! for token-set atoms, and sorted-char-prefix buckets for bounded atoms
//! like Jaro–Winkler; every operator declares its strategy through
//! `IndexableAtom`, surfaced per plan as [`KernelClass`] via
//! [`MatchPlan::atom_class`]), which answers point queries
//! ([`MatchIndex::query`]: matched ids plus which RCK fired), supports
//! incremental [`MatchIndex::insert`]/[`MatchIndex::remove`], and backs
//! [`MatchEngine::match_pairs_indexed`] — batch matching whose candidates
//! come from the index instead of sorted-neighborhood windows.
//!
//! Execution is parallel by default: the engine runs windowing, blocking
//! and pairwise key evaluation on a std-only work pool
//! (`matchrules-runtime`), configured through [`ExecConfig`] on the
//! builder ([`EngineBuilder::exec`]/[`EngineBuilder::threads`]) or per
//! engine via [`MatchEngine::with_exec`]. Parallel output is
//! **byte-identical** to serial; reports carry per-stage timings and the
//! thread count ([`MatchReport::stages`], [`MatchReport::threads`]).
//!
//! Pairwise similarity runs through a compiled hot path: per-relation
//! signature caches (the `"prep"` stage), cheap length/bag/q-gram pair
//! filters and banded edit-distance kernels instead of per-pair dynamic
//! dispatch. [`MatchReport::filter_stats`] reports how many evaluations
//! each filter stage rejected versus how many reached the DP
//! ([`FilterStats`]).
//!
//! The paper's own settings are just two [`Preset`] configurations of this
//! engine; nothing in the pipeline dispatches on the paper's attribute
//! names.

mod builder;
mod plan;
mod report;

/// The paper's ready-made configurations, expressed through the builder.
pub mod preset;

pub(crate) use builder::schemas_compatible;

pub use builder::{EngineBuilder, EngineError};
pub use matchrules_data::eval::{AtomStage, AtomTrace, FilterStats, KernelClass};
pub use matchrules_matcher::index::{
    IndexError, IndexStats, KeyTrace, MatchIndex, PairTrace, QueryHit, QueryOutcome,
    SelectivitySnapshot,
};
pub use matchrules_matcher::scoring::{
    resolve_one_to_one, resolve_one_to_one_shared, ScoreConfig, ScoreModel, ScoredEdge,
};
pub use matchrules_runtime::{ExecConfig, Threads};
pub use plan::MatchPlan;
pub use preset::Preset;
pub use report::{
    DedupReport, MatchEngine, MatchReport, MatchedPair, ResolvedDedupReport, ScoredLink, Stage,
};
