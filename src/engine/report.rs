//! [`MatchEngine`]: execute a compiled [`MatchPlan`] over relation pairs;
//! [`MatchReport`]: what came back.

use crate::engine::builder::EngineError;
use crate::engine::plan::MatchPlan;
use matchrules_core::schema::Side;
use matchrules_data::dirty::GroundTruth;
use matchrules_data::enforce::{enforce, EnforceOutcome};
use matchrules_data::eval::{FilterStats, RuntimeOps};
use matchrules_data::relation::{InstancePair, Relation, TupleId};
use matchrules_data::unionfind::UnionFind;
use matchrules_matcher::blocking::multi_pass_block_in;
use matchrules_matcher::index::{MatchIndex, SelectivitySnapshot};
use matchrules_matcher::key::{KeyMatcher, PAR_MATCH_MIN_CHUNK};
use matchrules_matcher::metrics::{evaluate_pairs, MatchQuality};
use matchrules_matcher::scoring::{resolve_one_to_one, resolve_one_to_one_shared, ScoredEdge};
use matchrules_matcher::windowing::multi_pass_window_in;
use matchrules_runtime::{ordered_reduce, ExecConfig, WorkPool};
use matchrules_simdist::ops::OpRegistry;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One matched tuple pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchedPair {
    /// Position of the left tuple in its relation.
    pub left: usize,
    /// Position of the right tuple in its relation.
    pub right: usize,
    /// Id of the left tuple.
    pub left_id: TupleId,
    /// Id of the right tuple.
    pub right_id: TupleId,
    /// Index (into the plan's RCK list) of the first key that matched.
    pub key: usize,
}

/// Wall-clock timing of one named stage of an engine run (candidate
/// generation, pairwise matching, transitive closure…).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stage {
    /// Stage name (`"window"`, `"block"`, `"match"`, `"closure"`…).
    pub name: &'static str,
    /// Wall-clock time the stage took.
    pub elapsed: Duration,
}

/// The structured result of one engine run.
#[derive(Debug, Clone)]
pub struct MatchReport {
    pairs: Vec<MatchedPair>,
    candidates: usize,
    comparisons: usize,
    total_pairs: usize,
    elapsed: Duration,
    plan_rcks: usize,
    stages: Vec<Stage>,
    threads: usize,
    filters: FilterStats,
}

impl MatchReport {
    /// The matched pairs.
    pub fn pairs(&self) -> &[MatchedPair] {
        &self.pairs
    }

    /// The matched pairs as `(left, right)` position pairs — the shape the
    /// metrics helpers consume.
    pub fn index_pairs(&self) -> Vec<(usize, usize)> {
        self.pairs.iter().map(|p| (p.left, p.right)).collect()
    }

    /// Number of matched pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether nothing matched.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Candidate pairs the reduction strategy produced.
    pub fn candidates(&self) -> usize {
        self.candidates
    }

    /// Pairs actually compared (= candidates for the engine's methods).
    pub fn comparisons(&self) -> usize {
        self.comparisons
    }

    /// Size of the full comparison space `|I1| · |I2|`.
    pub fn total_pairs(&self) -> usize {
        self.total_pairs
    }

    /// `1 − candidates / total`: how much of the comparison space the
    /// plan's keys skipped.
    pub fn reduction_ratio(&self) -> f64 {
        if self.total_pairs == 0 {
            0.0
        } else {
            1.0 - self.candidates as f64 / self.total_pairs as f64
        }
    }

    /// Wall-clock time of the whole run — candidate generation included;
    /// the plan was compiled beforehand.
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }

    /// Per-stage wall-clock breakdown of the run, in execution order.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Execution provenance: how many runtime threads the engine's pool
    /// was configured with for this run.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of RCKs in the plan that produced this report.
    pub fn plan_rcks(&self) -> usize {
        self.plan_rcks
    }

    /// Filter-effectiveness counters of the compiled similarity hot
    /// path: how many thresholded edit-distance atom evaluations the
    /// length / character-bag / q-gram filters rejected, and how many
    /// survived to the banded DP. Deterministic for a fixed candidate
    /// set, independent of the thread count.
    pub fn filter_stats(&self) -> FilterStats {
        self.filters
    }

    /// Scores the report against generator-held ground truth.
    pub fn score(&self, truth: &GroundTruth) -> MatchQuality {
        evaluate_pairs(&self.index_pairs(), truth)
    }
}

impl fmt::Display for MatchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} matches from {} candidates ({} possible pairs, {:.1}% skipped) in {:?} via {} keys on {} thread{}",
            self.pairs.len(),
            self.candidates,
            self.total_pairs,
            self.reduction_ratio() * 100.0,
            self.elapsed,
            self.plan_rcks,
            self.threads,
            if self.threads == 1 { "" } else { "s" },
        )
    }
}

/// A deduplication result: matched pairs plus their transitive closure
/// into entity clusters.
#[derive(Debug, Clone)]
pub struct DedupReport {
    /// The pairwise report (`left`/`right` are positions in the one
    /// relation; `left < right`).
    pub report: MatchReport,
    /// Entity clusters (every tuple position appears in exactly one).
    pub clusters: Vec<Vec<usize>>,
}

impl DedupReport {
    /// Number of distinct entities after merging.
    pub fn entity_count(&self) -> usize {
        self.clusters.len()
    }
}

/// One link of a one-to-one resolution: a matched pair plus its
/// calibrated score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredLink {
    /// Position of the left tuple in its relation.
    pub left: usize,
    /// Position of the right tuple in its relation.
    pub right: usize,
    /// Id of the left tuple.
    pub left_id: TupleId,
    /// Id of the right tuple.
    pub right_id: TupleId,
    /// Index (into the plan's RCK list) of the first key that matched.
    pub key: usize,
    /// Calibrated match confidence in `[0, 1]` from the plan's
    /// [`ScoreModel`](matchrules_matcher::scoring::ScoreModel).
    pub score: f64,
}

/// A scored one-to-one deduplication result — the resolved counterpart of
/// [`DedupReport`]: instead of transitively closing every rule-matched
/// pair into clusters, the pairs are scored and resolved into a matching
/// where **each record appears in at most one link**.
#[derive(Debug, Clone)]
pub struct ResolvedDedupReport {
    /// The pairwise report (all rule-matched pairs, before resolution).
    pub report: MatchReport,
    /// The selected one-to-one links (a subset of the report's pairs),
    /// in ascending `(left, right)` pair order.
    pub links: Vec<ScoredLink>,
}

impl ResolvedDedupReport {
    /// The links as `(left, right)` position pairs.
    pub fn index_pairs(&self) -> Vec<(usize, usize)> {
        self.links.iter().map(|l| (l.left, l.right)).collect()
    }
}

/// The reusable executor of one [`MatchPlan`]: resolved similarity
/// operators, the runtime pool, plus the plan — cheap to clone and
/// share.
#[derive(Clone)]
pub struct MatchEngine {
    plan: Arc<MatchPlan>,
    runtime: Arc<RuntimeOps>,
    registry: OpRegistry,
    pool: WorkPool,
}

impl fmt::Debug for MatchEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MatchEngine")
            .field("plan", &self.plan)
            .field("operators", &self.runtime.len())
            .field("threads", &self.pool.threads())
            .finish()
    }
}

impl MatchEngine {
    /// Resolves the plan's symbolic operators against `registry`; the
    /// runtime pool follows the plan's [`ExecConfig`].
    pub fn from_plan(plan: MatchPlan, registry: &OpRegistry) -> Result<Self, EngineError> {
        let runtime = RuntimeOps::resolve(plan.ops(), registry)?;
        let pool = WorkPool::new(plan.exec());
        Ok(MatchEngine {
            plan: Arc::new(plan),
            runtime: Arc::new(runtime),
            registry: registry.clone(),
            pool,
        })
    }

    /// The same engine (shared plan and operators) with a different
    /// execution configuration — no recompilation, so thread sweeps
    /// reuse one reasoning pass. Parallel output is byte-identical to
    /// serial, only [`MatchReport::threads`] and timings change.
    #[must_use]
    pub fn with_exec(&self, exec: ExecConfig) -> MatchEngine {
        MatchEngine {
            plan: self.plan.clone(),
            runtime: self.runtime.clone(),
            registry: self.registry.clone(),
            pool: WorkPool::new(exec),
        }
    }

    /// The compiled plan.
    pub fn plan(&self) -> &MatchPlan {
        &self.plan
    }

    /// The compiled plan as a shared handle — stays valid (and keeps
    /// describing the same rule version) however long the caller holds
    /// it, which is what concurrent serving layers need.
    pub fn plan_arc(&self) -> Arc<MatchPlan> {
        self.plan.clone()
    }

    /// The resolved operator bindings.
    pub fn runtime(&self) -> &RuntimeOps {
        &self.runtime
    }

    /// The operator registry the engine's plan was resolved against —
    /// what a rule hot-swap recompiles new rule text with, so custom
    /// operator bindings survive the swap.
    pub fn registry(&self) -> &OpRegistry {
        &self.registry
    }

    /// The runtime pool's thread count.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    fn check_side(&self, side: Side, relation: &Relation) -> Result<(), EngineError> {
        let expected = self.plan.pair().schema_of(side);
        let got = relation.schema();
        // Structural check (attribute names, order and domains): a
        // same-named, same-arity schema with reordered attributes would
        // otherwise silently compare the wrong columns.
        if !Arc::ptr_eq(got, expected) && !crate::engine::builder::schemas_compatible(got, expected)
        {
            return Err(EngineError::SchemaMismatch {
                expected: format!("{}/{}", expected.name(), expected.arity()),
                got: format!("{}/{}", got.name(), got.arity()),
            });
        }
        Ok(())
    }

    fn matcher(&self) -> KeyMatcher<'_> {
        KeyMatcher::new(self.plan.rcks().iter(), &self.runtime)
            .with_negatives(self.plan.negatives())
    }

    /// Pairwise key evaluation over the candidates through the compiled
    /// evaluator: filter signatures are extracted once per relation (the
    /// `"prep"` stage), then evaluation is chunked on the pool with
    /// per-chunk results concatenated in chunk order — the matched pairs
    /// come back exactly as a serial scan would produce them, and the
    /// per-chunk filter counters fold into one deterministic total.
    fn run(
        &self,
        left: &Relation,
        right: &Relation,
        candidates: Vec<(usize, usize)>,
        started: Instant,
        mut stages: Vec<Stage>,
    ) -> MatchReport {
        let matcher = self.matcher();
        let (left_prep, right_prep) =
            Self::staged("prep", &mut stages, || matcher.prepare_in(&self.pool, left, right));
        let match_started = Instant::now();
        let (pairs, filters) = ordered_reduce(
            &self.pool,
            &candidates,
            PAR_MATCH_MIN_CHUNK,
            |_, chunk| {
                let mut eval = matcher.evaluator(left, right, &left_prep, &right_prep);
                let mut out = Vec::new();
                for &(l, r) in chunk {
                    // One pass over the key disjunction, then only the
                    // negative rules — `matches()` would re-evaluate
                    // every key.
                    if let Some(key) = eval.matching_key(l, r) {
                        if !eval.vetoed(l, r) {
                            let (lt, rt) = (&left.tuples()[l], &right.tuples()[r]);
                            out.push(MatchedPair {
                                left: l,
                                right: r,
                                left_id: lt.id(),
                                right_id: rt.id(),
                                key,
                            });
                        }
                    }
                }
                (out, eval.stats())
            },
            (Vec::new(), FilterStats::default()),
            |(mut pairs, mut filters): (Vec<MatchedPair>, FilterStats), (chunk, chunk_stats)| {
                pairs.extend(chunk);
                filters.merge(&chunk_stats);
                (pairs, filters)
            },
        );
        stages.push(Stage { name: "match", elapsed: match_started.elapsed() });
        MatchReport {
            pairs,
            candidates: candidates.len(),
            comparisons: candidates.len(),
            total_pairs: left.len() * right.len(),
            elapsed: started.elapsed(),
            plan_rcks: self.plan.rcks().len(),
            stages,
            threads: self.pool.threads(),
            filters,
        }
    }

    /// Times one candidate-generation closure as a named stage.
    fn staged<T>(name: &'static str, stages: &mut Vec<Stage>, f: impl FnOnce() -> T) -> T {
        let started = Instant::now();
        let out = f();
        stages.push(Stage { name, elapsed: started.elapsed() });
        out
    }

    /// Matches a relation pair using the plan's windowed candidate
    /// generation (multi-pass over the RCK-derived sort keys). Falls back
    /// to the exhaustive comparison when the plan has no sort keys.
    pub fn match_pairs(
        &self,
        left: &Relation,
        right: &Relation,
    ) -> Result<MatchReport, EngineError> {
        self.check_side(Side::Left, left)?;
        self.check_side(Side::Right, right)?;
        if self.plan.sort_keys().is_empty() {
            return self.match_all(left, right);
        }
        let started = Instant::now();
        let mut stages = Vec::new();
        let candidates = Self::staged("window", &mut stages, || {
            multi_pass_window_in(&self.pool, left, right, self.plan.sort_keys(), self.plan.window())
        });
        Ok(self.run(left, right, candidates, started, stages))
    }

    /// Matches every pair of the cross product (small instances,
    /// correctness baselines).
    pub fn match_all(&self, left: &Relation, right: &Relation) -> Result<MatchReport, EngineError> {
        self.check_side(Side::Left, left)?;
        self.check_side(Side::Right, right)?;
        let started = Instant::now();
        let candidates: Vec<(usize, usize)> =
            (0..left.len()).flat_map(|l| (0..right.len()).map(move |r| (l, r))).collect();
        Ok(self.run(left, right, candidates, started, Vec::new()))
    }

    /// Matches caller-provided candidate pairs (bring your own blocking).
    pub fn match_candidates(
        &self,
        left: &Relation,
        right: &Relation,
        candidates: &[(usize, usize)],
    ) -> Result<MatchReport, EngineError> {
        self.check_side(Side::Left, left)?;
        self.check_side(Side::Right, right)?;
        Ok(self.run(left, right, candidates.to_vec(), Instant::now(), Vec::new()))
    }

    /// Shared front half of the dedup modes: windowed (or exhaustive)
    /// `i < j` candidates over the reflexive plan, pairwise matching,
    /// corrected pair-space accounting.
    fn dedup_matched(
        &self,
        relation: &Relation,
        started: Instant,
    ) -> Result<MatchReport, EngineError> {
        self.check_side(Side::Left, relation)?;
        self.check_side(Side::Right, relation)?;
        let mut stages = Vec::new();
        // Name the stage by what actually runs: a key-less plan has no
        // window to slide, it enumerates the full pair space.
        let stage_name = if self.plan.sort_keys().is_empty() { "exhaustive" } else { "window" };
        let candidates: Vec<(usize, usize)> = Self::staged(stage_name, &mut stages, || {
            if self.plan.sort_keys().is_empty() {
                (0..relation.len())
                    .flat_map(|i| (i + 1..relation.len()).map(move |j| (i, j)))
                    .collect()
            } else {
                multi_pass_window_in(
                    &self.pool,
                    relation,
                    relation,
                    self.plan.sort_keys(),
                    self.plan.window(),
                )
                .into_iter()
                .filter_map(|(i, j)| match i.cmp(&j) {
                    std::cmp::Ordering::Less => Some((i, j)),
                    std::cmp::Ordering::Greater => Some((j, i)),
                    std::cmp::Ordering::Equal => None,
                })
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect()
            }
        });
        let mut report = self.run(relation, relation, candidates, started, stages);
        // The cross product of a dedup run is the unordered pair count.
        report.total_pairs = relation.len() * relation.len().saturating_sub(1) / 2;
        Ok(report)
    }

    /// Deduplicates one relation over a reflexive plan: windowed candidate
    /// pairs `i < j`, pairwise matching, then transitive closure into
    /// entity clusters (merge/purge).
    pub fn dedup(&self, relation: &Relation) -> Result<DedupReport, EngineError> {
        let started = Instant::now();
        let mut report = self.dedup_matched(relation, started)?;
        // Closure in matched-pair order: the clusters (and their member
        // order) are identical however many threads matched the pairs.
        let closure_started = Instant::now();
        let mut uf = UnionFind::new(relation.len());
        for p in report.pairs() {
            uf.union(p.left, p.right);
        }
        let clusters = uf.groups();
        report.stages.push(Stage { name: "closure", elapsed: closure_started.elapsed() });
        report.elapsed = started.elapsed();
        Ok(DedupReport { clusters, report })
    }

    /// Scored one-to-one deduplication — the resolved counterpart of
    /// [`MatchEngine::dedup`]: the same rule-matched pairs, scored by the
    /// plan's [`ScoreModel`](matchrules_matcher::scoring::ScoreModel) and
    /// resolved into a matching where each record appears in **at most one
    /// link** (the `"resolve"` stage replaces `"closure"`). Links below
    /// `min_score` are dropped; pass `0.0` to keep every rule match
    /// eligible and let the assignment alone arbitrate conflicts.
    pub fn dedup_resolved(
        &self,
        relation: &Relation,
        min_score: f64,
    ) -> Result<ResolvedDedupReport, EngineError> {
        let started = Instant::now();
        let mut report = self.dedup_matched(relation, started)?;
        let resolve_started = Instant::now();
        let model = self.plan.score_model();
        let tuples = relation.tuples();
        let edges: Vec<ScoredEdge> = report
            .pairs()
            .iter()
            .map(|p| ScoredEdge {
                left: p.left,
                right: p.right,
                score: model.score(&self.runtime, &tuples[p.left], &tuples[p.right]),
            })
            .collect();
        let links = resolve_one_to_one_shared(&edges, min_score)
            .into_iter()
            .map(|i| {
                let p = &report.pairs()[i];
                ScoredLink {
                    left: p.left,
                    right: p.right,
                    left_id: p.left_id,
                    right_id: p.right_id,
                    key: p.key,
                    score: edges[i].score,
                }
            })
            .collect();
        report.stages.push(Stage { name: "resolve", elapsed: resolve_started.elapsed() });
        report.elapsed = started.elapsed();
        Ok(ResolvedDedupReport { report, links })
    }

    /// Scores and one-to-one-resolves the matched pairs of a
    /// **cross-relation** report (e.g. from
    /// [`MatchEngine::match_pairs_indexed`]): each left and each right
    /// record ends up in at most one link. This is the scored alternative
    /// to transitively closing matched pairs into clusters.
    pub fn resolve_links(
        &self,
        left: &Relation,
        right: &Relation,
        report: &MatchReport,
        min_score: f64,
    ) -> Result<Vec<ScoredLink>, EngineError> {
        self.check_side(Side::Left, left)?;
        self.check_side(Side::Right, right)?;
        let model = self.plan.score_model();
        let edges: Vec<ScoredEdge> = report
            .pairs()
            .iter()
            .map(|p| ScoredEdge {
                left: p.left,
                right: p.right,
                score: model.score(&self.runtime, &left.tuples()[p.left], &right.tuples()[p.right]),
            })
            .collect();
        Ok(resolve_one_to_one(&edges, min_score)
            .into_iter()
            .map(|i| {
                let p = &report.pairs()[i];
                ScoredLink {
                    left: p.left,
                    right: p.right,
                    left_id: p.left_id,
                    right_id: p.right_id,
                    key: p.key,
                    score: edges[i].score,
                }
            })
            .collect())
    }

    /// Calibrated match confidence of one tuple pair under the plan's
    /// compiled [`ScoreModel`](matchrules_matcher::scoring::ScoreModel):
    /// always in `[0, 1]`, never NaN, and a pure function of the pair —
    /// identical across thread counts and shard layouts.
    pub fn score_pair(
        &self,
        t1: &matchrules_data::relation::Tuple,
        t2: &matchrules_data::relation::Tuple,
    ) -> f64 {
        self.plan.score_model().score(&self.runtime, t1, t2)
    }

    /// Builds a [`MatchIndex`] over `relation` (which plays the plan's
    /// *right* side; probes instantiate the left schema) — the third
    /// execution mode next to batch matching and dedup: build once, then
    /// answer point queries and maintain the index incrementally instead
    /// of rescanning windows per batch. The build runs on the engine's
    /// pool; see [`MatchIndex`] for the per-RCK anchor design.
    ///
    /// ```
    /// use matchrules::engine::Preset;
    /// use matchrules::data::fig1;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let engine = Preset::Example11.builder().build()?;
    /// let inst = fig1::instance_for_pair(engine.plan().pair());
    /// let mut index = engine.index(inst.right())?;
    ///
    /// // Point lookup: which billing tuples match this credit record,
    /// // and which RCK fired?
    /// let t1 = inst.left().by_id(fig1::ids::T1).unwrap();
    /// let outcome = index.query(t1);
    /// assert_eq!(outcome.hits.len(), 4);
    ///
    /// // Incremental maintenance: removed tuples stop matching at once.
    /// let gone = outcome.hits[0].id;
    /// index.remove(gone)?;
    /// assert!(index.query(t1).hits.iter().all(|h| h.id != gone));
    /// # Ok(()) }
    /// ```
    pub fn index(&self, relation: &Relation) -> Result<MatchIndex, EngineError> {
        self.index_planned(relation, &SelectivitySnapshot::default())
    }

    /// [`MatchEngine::index`] with an explicit selectivity snapshot
    /// ordering each key's atom intersections — typically the previous
    /// index version's
    /// [`observed_selectivity`](MatchIndex::observed_selectivity), so
    /// rebuilt indices plan around live traffic. Hit sets are identical
    /// under every snapshot; only retrieval work moves.
    pub fn index_planned(
        &self,
        relation: &Relation,
        planner: &SelectivitySnapshot,
    ) -> Result<MatchIndex, EngineError> {
        self.check_side(Side::Right, relation)?;
        MatchIndex::build_planned(
            &self.pool,
            self.plan.pair().left().arity(),
            relation,
            self.plan.rcks(),
            self.plan.negatives(),
            self.runtime.clone(),
            planner,
        )
        .map_err(EngineError::from)
    }

    /// Matches a relation pair through an RCK-driven [`MatchIndex`]
    /// instead of sorted-neighborhood windows: the index is built over
    /// `right` (the `"index"` stage), every left tuple is probed for its
    /// candidate slots (the `"probe"` stage, chunked over the pool), and
    /// the candidates — ordered by `(left, right)` position — run through
    /// the same pairwise evaluation as every other mode.
    ///
    /// The matched-pair *set* equals
    /// [`MatchEngine::match_pairs`]'s whenever the windowed path has full
    /// recall, and is a superset otherwise (the index retrieves every
    /// pair its keys accept; windows can miss pairs that never share a
    /// window). Candidate counts are typically far smaller — that gap is
    /// what `BENCH_index.json` measures.
    pub fn match_pairs_indexed(
        &self,
        left: &Relation,
        right: &Relation,
    ) -> Result<MatchReport, EngineError> {
        self.check_side(Side::Left, left)?;
        self.check_side(Side::Right, right)?;
        let started = Instant::now();
        let mut stages = Vec::new();
        let index = {
            let build_started = Instant::now();
            let index = MatchIndex::build_in(
                &self.pool,
                self.plan.pair().left().arity(),
                right,
                self.plan.rcks(),
                self.plan.negatives(),
                self.runtime.clone(),
            )?;
            stages.push(Stage { name: "index", elapsed: build_started.elapsed() });
            index
        };
        let candidates = Self::staged("probe", &mut stages, || {
            let per_probe = index.candidates_batch_in(&self.pool, left);
            let mut out = Vec::new();
            for (l, slots) in per_probe.into_iter().enumerate() {
                for r in slots {
                    out.push((l, r));
                }
            }
            out
        });
        Ok(self.run(left, right, candidates, started, stages))
    }

    /// Candidate `(left, right)` pairs sharing the plan's RCK-derived
    /// blocking key.
    pub fn block(
        &self,
        left: &Relation,
        right: &Relation,
    ) -> Result<Vec<(usize, usize)>, EngineError> {
        self.check_side(Side::Left, left)?;
        self.check_side(Side::Right, right)?;
        let key = self.plan.block_key().ok_or(EngineError::NoKeys)?;
        Ok(multi_pass_block_in(&self.pool, left, right, std::slice::from_ref(key)))
    }

    /// Candidate `(left, right)` pairs from multi-pass windowing over the
    /// plan's RCK-derived sort keys.
    pub fn window(
        &self,
        left: &Relation,
        right: &Relation,
    ) -> Result<Vec<(usize, usize)>, EngineError> {
        self.check_side(Side::Left, left)?;
        self.check_side(Side::Right, right)?;
        if self.plan.sort_keys().is_empty() {
            return Err(EngineError::NoKeys);
        }
        Ok(multi_pass_window_in(&self.pool, left, right, self.plan.sort_keys(), self.plan.window()))
    }

    /// Enforces the plan's MDs on an instance pair — the paper's dynamic
    /// semantics (chase to a stable instance).
    pub fn enforce(&self, d: &InstancePair) -> EnforceOutcome {
        enforce(d, self.plan.sigma(), &self.runtime)
    }
}
