//! [`MatchPlan`]: the immutable artifact of compiling MDs into keys.

use matchrules_core::dependency::MatchingDependency;
use matchrules_core::negation::NegativeRule;
use matchrules_core::operators::{OperatorId, OperatorTable};
use matchrules_core::relative_key::{RelativeKey, Target};
use matchrules_core::schema::SchemaPair;
use matchrules_data::eval::KernelClass;
use matchrules_data::relation::Relation;
use matchrules_matcher::index::qgram_safe_len;
use matchrules_matcher::scoring::ScoreModel;
use matchrules_matcher::sortkey::SortKey;
use matchrules_runtime::ExecConfig;
use matchrules_simdist::filters::FILTER_Q;
use std::fmt;
use std::fmt::Write as _;

/// The retrieval anchor kind a [`MatchIndex`](crate::engine::MatchIndex)
/// gives atoms of `class` — `None` when such atoms force a scan (opaque
/// operators, and edit thresholds too loose for gram sharing to be
/// guaranteed at any length).
fn anchor_kind(class: KernelClass) -> Option<&'static str> {
    match class {
        KernelClass::Equality => Some("exact"),
        KernelClass::Edit { theta } => qgram_safe_len(theta, FILTER_Q).map(|_| "qgram"),
        KernelClass::DerivedKey => Some("derived-key"),
        KernelClass::TokenSet { .. } => Some("token"),
        KernelClass::Bounded { .. } => Some("char-bag"),
        KernelClass::Opaque => None,
    }
}

/// The compiled match plan: schemas, the MD set, the deduced top-k RCKs,
/// and the sort/block keys derived from them via attribute kinds.
///
/// A plan is immutable and carries no references to instance data; compile
/// it once (an `O(closure)` reasoning step) and execute it over any number
/// of relation pairs through a
/// [`MatchEngine`](crate::engine::MatchEngine). One compiled plan drives
/// all three execution modes — batch matching over windowed candidates,
/// single-relation dedup, and the RCK-driven
/// [`MatchIndex`](crate::engine::MatchIndex) (point queries and
/// index-backed batch matching): the RCK list in [`MatchPlan::rcks`] is
/// simultaneously the match predicate, the source of the derived
/// sort/block keys, and the source of the index's retrieval anchors.
#[derive(Debug, Clone)]
pub struct MatchPlan {
    pair: SchemaPair,
    ops: OperatorTable,
    sigma: Vec<MatchingDependency>,
    target: Target,
    rcks: Vec<RelativeKey>,
    rck_costs: Vec<f64>,
    /// Per-operator retrieval class (indexed by `OperatorId`), derived
    /// from each resolved operator's declared `IndexStrategy` at compile
    /// time.
    atom_classes: Vec<KernelClass>,
    complete: bool,
    negatives: Vec<NegativeRule>,
    sort_keys: Vec<SortKey>,
    block_key: Option<SortKey>,
    window: usize,
    top_k: usize,
    weights: (f64, f64, f64),
    avg_lengths: Option<(Vec<f64>, Vec<f64>)>,
    score_model: ScoreModel,
    score_sample: Option<(Relation, Relation)>,
    exec: ExecConfig,
}

impl MatchPlan {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        pair: SchemaPair,
        ops: OperatorTable,
        sigma: Vec<MatchingDependency>,
        target: Target,
        rcks: Vec<RelativeKey>,
        rck_costs: Vec<f64>,
        atom_classes: Vec<KernelClass>,
        complete: bool,
        negatives: Vec<NegativeRule>,
        sort_keys: Vec<SortKey>,
        block_key: Option<SortKey>,
        window: usize,
        top_k: usize,
        weights: (f64, f64, f64),
        avg_lengths: Option<(Vec<f64>, Vec<f64>)>,
        score_model: ScoreModel,
        score_sample: Option<(Relation, Relation)>,
        exec: ExecConfig,
    ) -> Self {
        MatchPlan {
            pair,
            ops,
            sigma,
            target,
            rcks,
            rck_costs,
            atom_classes,
            complete,
            negatives,
            sort_keys,
            block_key,
            window,
            top_k,
            weights,
            avg_lengths,
            score_model,
            score_sample,
            exec,
        }
    }

    /// The schema pair the plan was compiled for.
    pub fn pair(&self) -> &SchemaPair {
        &self.pair
    }

    /// The symbolic operator table (for rendering keys and MDs).
    pub fn ops(&self) -> &OperatorTable {
        &self.ops
    }

    /// The given MD set Σ.
    pub fn sigma(&self) -> &[MatchingDependency] {
        &self.sigma
    }

    /// The target identity lists `(Y1, Y2)`.
    pub fn target(&self) -> &Target {
        &self.target
    }

    /// The deduced relative candidate keys, in quality order.
    pub fn rcks(&self) -> &[RelativeKey] {
        &self.rcks
    }

    /// The cost-model cost of each deduced key (summed per-atom pair
    /// costs, parallel to [`MatchPlan::rcks`]), evaluated under the
    /// model's **final post-selection state**: `findRCKs` bumps the
    /// diversity (`ct`) counters as it selects, so these are comparable
    /// snapshots of all keys under one state — not the exact values each
    /// key minimized at its own selection step, and not necessarily
    /// ascending.
    pub fn rck_costs(&self) -> &[f64] {
        &self.rck_costs
    }

    /// Whether the RCK enumeration was exhaustive (Proposition 5.1: the
    /// plan then holds *every* key deducible from Σ).
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// The retrieval class of `op` — how (and whether) the RCK-driven
    /// index can anchor atoms under this operator, as declared by the
    /// resolved operator's `IndexStrategy` at compile time.
    pub fn atom_class(&self, op: OperatorId) -> KernelClass {
        self.atom_classes[op.0 as usize]
    }

    /// Whether every RCK of the plan has at least one indexable atom —
    /// i.e. a [`MatchIndex`](crate::engine::MatchIndex) built from this
    /// plan probes entirely through its anchors, with zero scan-fallback
    /// keys.
    pub fn fully_indexable(&self) -> bool {
        self.rcks
            .iter()
            .all(|key| key.atoms().iter().any(|a| anchor_kind(self.atom_class(a.op)).is_some()))
    }

    /// The `top_k` bound the plan was compiled with (how many RCKs
    /// `findRCKs` was asked for) — preserved so a rule hot-swap
    /// ([`EngineBuilder::from_plan`](crate::engine::EngineBuilder::from_plan))
    /// recompiles under the same configuration.
    pub fn top_k(&self) -> usize {
        self.top_k
    }

    /// The cost-model weights `(w1, w2, w3)` the plan was compiled with.
    pub fn cost_weights(&self) -> (f64, f64, f64) {
        self.weights
    }

    /// The measured per-attribute average lengths
    /// ([`EngineBuilder::statistics_from`](crate::engine::EngineBuilder::statistics_from))
    /// the cost model saw, when any — preserved so a rule hot-swap
    /// recompiles under the *same* cost ranking as the original plan.
    pub fn measured_lengths(&self) -> Option<(&[f64], &[f64])> {
        self.avg_lengths.as_ref().map(|(l, r)| (l.as_slice(), r.as_slice()))
    }

    /// The calibrated pair-scoring model compiled alongside the keys:
    /// Fellegi–Sunter weights over the union of the RCK atoms, EM-fitted
    /// on the builder's measured sample when one was supplied
    /// ([`EngineBuilder::statistics_from`](crate::engine::EngineBuilder::statistics_from)),
    /// otherwise the clamped prior. Scoring through it is a pure function
    /// of the tuple pair, so ranked results are identical across thread
    /// and shard layouts.
    pub fn score_model(&self) -> &ScoreModel {
        &self.score_model
    }

    /// The retained scoring sample (when statistics were measured) —
    /// preserved so a rule hot-swap refits the score model on the *same*
    /// sample, keeping post-swap scores deterministic.
    pub(crate) fn score_sample(&self) -> Option<&(Relation, Relation)> {
        self.score_sample.as_ref()
    }

    /// The §8 negative rules guarding the match keys.
    pub fn negatives(&self) -> &[NegativeRule] {
        &self.negatives
    }

    /// Sort keys derived from the top RCKs (multi-pass windowing).
    pub fn sort_keys(&self) -> &[SortKey] {
        &self.sort_keys
    }

    /// The blocking key derived from the top RCKs, when any key exists.
    pub fn block_key(&self) -> Option<&SortKey> {
        self.block_key.as_ref()
    }

    /// The configured sliding-window size.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The execution configuration (thread policy) the plan was compiled
    /// with; [`MatchEngine::with_exec`](crate::engine::MatchEngine::with_exec)
    /// can override it per engine without recompiling.
    pub fn exec(&self) -> ExecConfig {
        self.exec
    }

    /// Human-readable provenance: schemas, Σ, and the deduced keys with
    /// their cost-model costs and per-atom index anchors — what a report
    /// means by "plan". [`MatchPlan`]'s `Display` implementation
    /// delegates here.
    ///
    /// ```
    /// use matchrules::engine::Preset;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let engine = Preset::Example11.builder().build()?;
    /// let text = engine.plan().describe();
    /// assert!(text.contains("3 MDs -> 5 RCKs"));
    /// // Every deduced key is listed with its cost-model cost and the
    /// // anchor kinds the MatchIndex will probe it through…
    /// assert!(text.contains("[cost "));
    /// assert!(text.contains("[anchors: "));
    /// // …and Display renders the same provenance.
    /// assert_eq!(engine.plan().to_string(), text);
    /// # Ok(()) }
    /// ```
    ///
    /// A key none of whose operators declares a retrieval strategy falls
    /// off the index onto a per-probe scan; `describe` warns per key,
    /// naming the offending operator(s):
    ///
    /// ```
    /// use matchrules::core::schema::Schema;
    /// use matchrules::engine::EngineBuilder;
    /// use matchrules::simdist::ops::{EqualityOp, SynonymOp};
    /// use matchrules_data::eval::paper_registry;
    /// use std::sync::Arc;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// // A synonym operator with a fallback declares IndexStrategy::Scan.
    /// let mut registry = paper_registry();
    /// registry.register(Arc::new(
    ///     SynonymOp::from_groups("≈nick", [["Bob", "Robert"].as_slice()])
    ///         .with_fallback(Arc::new(EqualityOp)),
    /// ));
    /// let engine = EngineBuilder::new()
    ///     .schemas(Schema::text("a", &["name"])?, Schema::text("b", &["name"])?)
    ///     .md_text("a[name] ~nick b[name] -> a[name] <=> b[name]")
    ///     .target(&["name"], &["name"])
    ///     .operators(registry)
    ///     .build()?;
    /// let text = engine.plan().describe();
    /// assert!(text.contains("scan fallback"));
    /// assert!(text.contains("≈nick"));
    /// assert!(!engine.plan().fully_indexable());
    /// # Ok(()) }
    /// ```
    pub fn describe(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "plan over ({}/{} attrs, {}/{} attrs): {} MDs -> {} RCKs{}",
            self.pair.left().name(),
            self.pair.left().arity(),
            self.pair.right().name(),
            self.pair.right().arity(),
            self.sigma.len(),
            self.rcks.len(),
            if self.complete { " (complete)" } else { "" },
        );
        for (i, key) in self.rcks.iter().enumerate() {
            // Anchor kinds the index gives this key's atoms, in atom
            // order; operators with no retrieval strategy are collected
            // for the scan warning below.
            let mut kinds: Vec<&'static str> = Vec::new();
            let mut unindexable: Vec<&str> = Vec::new();
            for atom in key.atoms() {
                match anchor_kind(self.atom_class(atom.op)) {
                    Some(kind) => {
                        if !kinds.contains(&kind) {
                            kinds.push(kind);
                        }
                    }
                    None => {
                        let name = self.ops.name(atom.op);
                        if !unindexable.contains(&name) {
                            unindexable.push(name);
                        }
                    }
                }
            }
            let _ = writeln!(
                out,
                "  [cost {:.2}] {} [anchors: {}]",
                self.rck_costs.get(i).copied().unwrap_or(f64::NAN),
                key.display(&self.pair, &self.ops),
                if kinds.is_empty() { "none".to_owned() } else { kinds.join(", ") },
            );
            if kinds.is_empty() {
                let _ = writeln!(
                    out,
                    "    !! scan fallback: every probe scans all live tuples for this key \
                     (operator{} {} declare{} no retrieval strategy)",
                    if unindexable.len() == 1 { "" } else { "s" },
                    unindexable.join(", "),
                    if unindexable.len() == 1 { "s" } else { "" },
                );
            }
        }
        let _ = writeln!(
            out,
            "  derived: {} sort key(s), {} block key, window {}, threads {}",
            self.sort_keys.len(),
            if self.block_key.is_some() { "1" } else { "no" },
            self.window,
            self.exec.threads,
        );
        out
    }
}

impl fmt::Display for MatchPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}
