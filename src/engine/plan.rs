//! [`MatchPlan`]: the immutable artifact of compiling MDs into keys.

use matchrules_core::dependency::MatchingDependency;
use matchrules_core::negation::NegativeRule;
use matchrules_core::operators::OperatorTable;
use matchrules_core::relative_key::{RelativeKey, Target};
use matchrules_core::schema::SchemaPair;
use matchrules_matcher::sortkey::SortKey;
use matchrules_runtime::ExecConfig;
use std::fmt::Write as _;

/// The compiled match plan: schemas, the MD set, the deduced top-k RCKs,
/// and the sort/block keys derived from them via attribute kinds.
///
/// A plan is immutable and carries no references to instance data; compile
/// it once (an `O(closure)` reasoning step) and execute it over any number
/// of relation pairs through a
/// [`MatchEngine`](crate::engine::MatchEngine). One compiled plan drives
/// all three execution modes — batch matching over windowed candidates,
/// single-relation dedup, and the RCK-driven
/// [`MatchIndex`](crate::engine::MatchIndex) (point queries and
/// index-backed batch matching): the RCK list in [`MatchPlan::rcks`] is
/// simultaneously the match predicate, the source of the derived
/// sort/block keys, and the source of the index's retrieval anchors.
#[derive(Debug, Clone)]
pub struct MatchPlan {
    pair: SchemaPair,
    ops: OperatorTable,
    sigma: Vec<MatchingDependency>,
    target: Target,
    rcks: Vec<RelativeKey>,
    complete: bool,
    negatives: Vec<NegativeRule>,
    sort_keys: Vec<SortKey>,
    block_key: Option<SortKey>,
    window: usize,
    exec: ExecConfig,
}

impl MatchPlan {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        pair: SchemaPair,
        ops: OperatorTable,
        sigma: Vec<MatchingDependency>,
        target: Target,
        rcks: Vec<RelativeKey>,
        complete: bool,
        negatives: Vec<NegativeRule>,
        sort_keys: Vec<SortKey>,
        block_key: Option<SortKey>,
        window: usize,
        exec: ExecConfig,
    ) -> Self {
        MatchPlan {
            pair,
            ops,
            sigma,
            target,
            rcks,
            complete,
            negatives,
            sort_keys,
            block_key,
            window,
            exec,
        }
    }

    /// The schema pair the plan was compiled for.
    pub fn pair(&self) -> &SchemaPair {
        &self.pair
    }

    /// The symbolic operator table (for rendering keys and MDs).
    pub fn ops(&self) -> &OperatorTable {
        &self.ops
    }

    /// The given MD set Σ.
    pub fn sigma(&self) -> &[MatchingDependency] {
        &self.sigma
    }

    /// The target identity lists `(Y1, Y2)`.
    pub fn target(&self) -> &Target {
        &self.target
    }

    /// The deduced relative candidate keys, in quality order.
    pub fn rcks(&self) -> &[RelativeKey] {
        &self.rcks
    }

    /// Whether the RCK enumeration was exhaustive (Proposition 5.1: the
    /// plan then holds *every* key deducible from Σ).
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// The §8 negative rules guarding the match keys.
    pub fn negatives(&self) -> &[NegativeRule] {
        &self.negatives
    }

    /// Sort keys derived from the top RCKs (multi-pass windowing).
    pub fn sort_keys(&self) -> &[SortKey] {
        &self.sort_keys
    }

    /// The blocking key derived from the top RCKs, when any key exists.
    pub fn block_key(&self) -> Option<&SortKey> {
        self.block_key.as_ref()
    }

    /// The configured sliding-window size.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The execution configuration (thread policy) the plan was compiled
    /// with; [`MatchEngine::with_exec`](crate::engine::MatchEngine::with_exec)
    /// can override it per engine without recompiling.
    pub fn exec(&self) -> ExecConfig {
        self.exec
    }

    /// Human-readable provenance: schemas, Σ, and the deduced keys — what
    /// a report means by "plan".
    pub fn describe(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "plan over ({}/{} attrs, {}/{} attrs): {} MDs -> {} RCKs{}",
            self.pair.left().name(),
            self.pair.left().arity(),
            self.pair.right().name(),
            self.pair.right().arity(),
            self.sigma.len(),
            self.rcks.len(),
            if self.complete { " (complete)" } else { "" },
        );
        for key in &self.rcks {
            let _ = writeln!(out, "  {}", key.display(&self.pair, &self.ops));
        }
        let _ = writeln!(
            out,
            "  derived: {} sort key(s), {} block key, window {}, threads {}",
            self.sort_keys.len(),
            if self.block_key.is_some() { "1" } else { "no" },
            self.window,
            self.exec.threads,
        );
        out
    }
}
