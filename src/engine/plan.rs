//! [`MatchPlan`]: the immutable artifact of compiling MDs into keys.

use matchrules_core::dependency::MatchingDependency;
use matchrules_core::negation::NegativeRule;
use matchrules_core::operators::OperatorTable;
use matchrules_core::relative_key::{RelativeKey, Target};
use matchrules_core::schema::SchemaPair;
use matchrules_data::relation::Relation;
use matchrules_matcher::scoring::ScoreModel;
use matchrules_matcher::sortkey::SortKey;
use matchrules_runtime::ExecConfig;
use std::fmt;
use std::fmt::Write as _;

/// The compiled match plan: schemas, the MD set, the deduced top-k RCKs,
/// and the sort/block keys derived from them via attribute kinds.
///
/// A plan is immutable and carries no references to instance data; compile
/// it once (an `O(closure)` reasoning step) and execute it over any number
/// of relation pairs through a
/// [`MatchEngine`](crate::engine::MatchEngine). One compiled plan drives
/// all three execution modes — batch matching over windowed candidates,
/// single-relation dedup, and the RCK-driven
/// [`MatchIndex`](crate::engine::MatchIndex) (point queries and
/// index-backed batch matching): the RCK list in [`MatchPlan::rcks`] is
/// simultaneously the match predicate, the source of the derived
/// sort/block keys, and the source of the index's retrieval anchors.
#[derive(Debug, Clone)]
pub struct MatchPlan {
    pair: SchemaPair,
    ops: OperatorTable,
    sigma: Vec<MatchingDependency>,
    target: Target,
    rcks: Vec<RelativeKey>,
    rck_costs: Vec<f64>,
    complete: bool,
    negatives: Vec<NegativeRule>,
    sort_keys: Vec<SortKey>,
    block_key: Option<SortKey>,
    window: usize,
    top_k: usize,
    weights: (f64, f64, f64),
    avg_lengths: Option<(Vec<f64>, Vec<f64>)>,
    score_model: ScoreModel,
    score_sample: Option<(Relation, Relation)>,
    exec: ExecConfig,
}

impl MatchPlan {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        pair: SchemaPair,
        ops: OperatorTable,
        sigma: Vec<MatchingDependency>,
        target: Target,
        rcks: Vec<RelativeKey>,
        rck_costs: Vec<f64>,
        complete: bool,
        negatives: Vec<NegativeRule>,
        sort_keys: Vec<SortKey>,
        block_key: Option<SortKey>,
        window: usize,
        top_k: usize,
        weights: (f64, f64, f64),
        avg_lengths: Option<(Vec<f64>, Vec<f64>)>,
        score_model: ScoreModel,
        score_sample: Option<(Relation, Relation)>,
        exec: ExecConfig,
    ) -> Self {
        MatchPlan {
            pair,
            ops,
            sigma,
            target,
            rcks,
            rck_costs,
            complete,
            negatives,
            sort_keys,
            block_key,
            window,
            top_k,
            weights,
            avg_lengths,
            score_model,
            score_sample,
            exec,
        }
    }

    /// The schema pair the plan was compiled for.
    pub fn pair(&self) -> &SchemaPair {
        &self.pair
    }

    /// The symbolic operator table (for rendering keys and MDs).
    pub fn ops(&self) -> &OperatorTable {
        &self.ops
    }

    /// The given MD set Σ.
    pub fn sigma(&self) -> &[MatchingDependency] {
        &self.sigma
    }

    /// The target identity lists `(Y1, Y2)`.
    pub fn target(&self) -> &Target {
        &self.target
    }

    /// The deduced relative candidate keys, in quality order.
    pub fn rcks(&self) -> &[RelativeKey] {
        &self.rcks
    }

    /// The cost-model cost of each deduced key (summed per-atom pair
    /// costs, parallel to [`MatchPlan::rcks`]), evaluated under the
    /// model's **final post-selection state**: `findRCKs` bumps the
    /// diversity (`ct`) counters as it selects, so these are comparable
    /// snapshots of all keys under one state — not the exact values each
    /// key minimized at its own selection step, and not necessarily
    /// ascending.
    pub fn rck_costs(&self) -> &[f64] {
        &self.rck_costs
    }

    /// Whether the RCK enumeration was exhaustive (Proposition 5.1: the
    /// plan then holds *every* key deducible from Σ).
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// The `top_k` bound the plan was compiled with (how many RCKs
    /// `findRCKs` was asked for) — preserved so a rule hot-swap
    /// ([`EngineBuilder::from_plan`](crate::engine::EngineBuilder::from_plan))
    /// recompiles under the same configuration.
    pub fn top_k(&self) -> usize {
        self.top_k
    }

    /// The cost-model weights `(w1, w2, w3)` the plan was compiled with.
    pub fn cost_weights(&self) -> (f64, f64, f64) {
        self.weights
    }

    /// The measured per-attribute average lengths
    /// ([`EngineBuilder::statistics_from`](crate::engine::EngineBuilder::statistics_from))
    /// the cost model saw, when any — preserved so a rule hot-swap
    /// recompiles under the *same* cost ranking as the original plan.
    pub fn measured_lengths(&self) -> Option<(&[f64], &[f64])> {
        self.avg_lengths.as_ref().map(|(l, r)| (l.as_slice(), r.as_slice()))
    }

    /// The calibrated pair-scoring model compiled alongside the keys:
    /// Fellegi–Sunter weights over the union of the RCK atoms, EM-fitted
    /// on the builder's measured sample when one was supplied
    /// ([`EngineBuilder::statistics_from`](crate::engine::EngineBuilder::statistics_from)),
    /// otherwise the clamped prior. Scoring through it is a pure function
    /// of the tuple pair, so ranked results are identical across thread
    /// and shard layouts.
    pub fn score_model(&self) -> &ScoreModel {
        &self.score_model
    }

    /// The retained scoring sample (when statistics were measured) —
    /// preserved so a rule hot-swap refits the score model on the *same*
    /// sample, keeping post-swap scores deterministic.
    pub(crate) fn score_sample(&self) -> Option<&(Relation, Relation)> {
        self.score_sample.as_ref()
    }

    /// The §8 negative rules guarding the match keys.
    pub fn negatives(&self) -> &[NegativeRule] {
        &self.negatives
    }

    /// Sort keys derived from the top RCKs (multi-pass windowing).
    pub fn sort_keys(&self) -> &[SortKey] {
        &self.sort_keys
    }

    /// The blocking key derived from the top RCKs, when any key exists.
    pub fn block_key(&self) -> Option<&SortKey> {
        self.block_key.as_ref()
    }

    /// The configured sliding-window size.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The execution configuration (thread policy) the plan was compiled
    /// with; [`MatchEngine::with_exec`](crate::engine::MatchEngine::with_exec)
    /// can override it per engine without recompiling.
    pub fn exec(&self) -> ExecConfig {
        self.exec
    }

    /// Human-readable provenance: schemas, Σ, and the deduced keys with
    /// their cost-model costs — what a report means by "plan".
    /// [`MatchPlan`]'s `Display` implementation delegates here.
    ///
    /// ```
    /// use matchrules::engine::Preset;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let engine = Preset::Example11.builder().build()?;
    /// let text = engine.plan().describe();
    /// assert!(text.contains("3 MDs -> 5 RCKs"));
    /// // Every deduced key is listed with its cost-model cost…
    /// assert!(text.contains("[cost "));
    /// // …and Display renders the same provenance.
    /// assert_eq!(engine.plan().to_string(), text);
    /// # Ok(()) }
    /// ```
    pub fn describe(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "plan over ({}/{} attrs, {}/{} attrs): {} MDs -> {} RCKs{}",
            self.pair.left().name(),
            self.pair.left().arity(),
            self.pair.right().name(),
            self.pair.right().arity(),
            self.sigma.len(),
            self.rcks.len(),
            if self.complete { " (complete)" } else { "" },
        );
        for (i, key) in self.rcks.iter().enumerate() {
            let _ = writeln!(
                out,
                "  [cost {:.2}] {}",
                self.rck_costs.get(i).copied().unwrap_or(f64::NAN),
                key.display(&self.pair, &self.ops),
            );
        }
        let _ = writeln!(
            out,
            "  derived: {} sort key(s), {} block key, window {}, threads {}",
            self.sort_keys.len(),
            if self.block_key.is_some() { "1" } else { "no" },
            self.window,
            self.exec.threads,
        );
        out
    }
}

impl fmt::Display for MatchPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}
