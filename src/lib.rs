//! # matchrules
//!
//! A from-scratch Rust implementation of
//!
//! > Wenfei Fan, Xibei Jia, Jianzhong Li, Shuai Ma.
//! > *Reasoning about Record Matching Rules.* VLDB 2009.
//!
//! Matching dependencies (MDs) declare, over a pair of possibly different
//! and unreliable relations, that *if certain attributes are pairwise
//! similar, certain other attributes identify the same real-world value*.
//! Reasoning about MDs (the deduction relation `Σ |=m ϕ`, decided by the
//! MDClosure algorithm) derives **relative candidate keys (RCKs)** — minimal
//! lists of attributes to compare, and the operators to compare them with —
//! which improve the quality and efficiency of record matching, blocking
//! and windowing.
//!
//! ## Quickstart: the match engine
//!
//! The top-level API is the schema-agnostic [`engine`]: declare *your*
//! schemas (with per-attribute [`AttrKind`](core::schema::AttrKind)
//! metadata), your MDs and your identity lists; compile them **once** into
//! a [`MatchPlan`]; then run the cheap, reusable [`MatchEngine`] over any
//! relation pair:
//!
//! ```
//! use matchrules::engine::EngineBuilder;
//! use matchrules::core::schema::{AttrKind, Schema};
//! use matchrules::data::relation::Relation;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. Schemas — none of the paper's attribute names, just kinds.
//! let crm = Schema::kinded("crm", &[
//!     ("first", AttrKind::GivenName),
//!     ("last", AttrKind::Surname),
//!     ("mobile", AttrKind::Phone),
//!     ("mail", AttrKind::Email),
//! ])?;
//! let orders = Schema::kinded("orders", &[
//!     ("fname", AttrKind::GivenName),
//!     ("lname", AttrKind::Surname),
//!     ("contact", AttrKind::Phone),
//!     ("email", AttrKind::Email),
//! ])?;
//!
//! // 2. Compile MDs -> RCKs -> match plan, once.
//! let engine = EngineBuilder::new()
//!     .schemas(crm.clone(), orders.clone())
//!     .md_text(
//!         "crm[mail] = orders[email] -> crm[first,last] <=> orders[fname,lname]\n\
//!          crm[last] = orders[lname] /\\ crm[first] ~d orders[fname] /\\ \
//!          crm[mobile] = orders[contact] -> \
//!          crm[first,last,mobile] <=> orders[fname,lname,contact]\n",
//!     )
//!     .target(&["first", "last", "mobile"], &["fname", "lname", "contact"])
//!     .build()?;
//! assert!(!engine.plan().rcks().is_empty());
//!
//! // 3. Run the plan on any instances of the schemas.
//! let mut left = Relation::new(engine.plan().pair().left().clone());
//! left.push_strs(1, &["Mark", "Clifford", "908-1111111", "mc@gm.com"]);
//! let mut right = Relation::new(engine.plan().pair().right().clone());
//! right.push_strs(1, &["Marx", "Clifford", "908-1111111", "mc@gm.com"]);
//! let report = engine.match_all(&left, &right)?;
//! assert_eq!(report.len(), 1);
//! # Ok(()) }
//! ```
//!
//! The paper's own settings are two [`engine::Preset`]s of the same
//! machinery (`Preset::Example11.builder()`, `Preset::Extended.builder()`).
//!
//! ## Serving: the index mode
//!
//! Batch matching and dedup are two of the engine's execution modes; the
//! third is the RCK-driven [`MatchIndex`](engine::MatchIndex): compile
//! the plan's keys into per-attribute inverted indices (exact buckets
//! for equality atoms, q-gram posting lists for edit atoms), then answer
//! *point queries* — "which tuples match this record, and which RCK
//! fired?" — and maintain the index incrementally, instead of rescanning
//! windows per batch:
//!
//! ```
//! use matchrules::engine::Preset;
//! use matchrules::data::fig1;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let engine = Preset::Example11.builder().build()?;
//! let inst = fig1::instance_for_pair(engine.plan().pair());
//!
//! // Build once over the right-hand relation…
//! let mut index = engine.index(inst.right())?;
//! // …query many: matched ids + key provenance per probe.
//! let t1 = inst.left().by_id(fig1::ids::T1).unwrap();
//! assert_eq!(index.query(t1).hits.len(), 4);
//! // …and maintain incrementally.
//! let first = index.query(t1).hits[0].id;
//! index.remove(first)?;
//! assert_eq!(index.query(t1).hits.len(), 3);
//!
//! // The same index backs batch matching: identical decisions to the
//! // windowed path, typically far fewer candidate pairs examined.
//! let report = engine.match_pairs_indexed(inst.left(), inst.right())?;
//! assert_eq!(report.len(), 4);
//! # Ok(()) }
//! ```
//!
//! ## Serving layer: MatchService
//!
//! The [`service`] module wraps all of that into a long-lived, stateful
//! front door: a record store with stable external ids, field-name
//! inputs (never build a `Relation` by hand), point queries stamped with
//! a rule version, **hot-swappable rules** (recompile + reindex off to
//! the side, swap atomically — the store survives rule iteration), and
//! per-pair **match explanations** tracing every atom and the MD
//! deduction path behind the fired key:
//!
//! ```
//! use matchrules::engine::EngineBuilder;
//! use matchrules::core::schema::{AttrKind, Schema};
//! use matchrules::service::{MatchService, RecordId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let crm = Schema::kinded("crm", &[
//! #     ("first", AttrKind::GivenName), ("last", AttrKind::Surname),
//! #     ("mobile", AttrKind::Phone), ("mail", AttrKind::Email)])?;
//! # let orders = Schema::kinded("orders", &[
//! #     ("fname", AttrKind::GivenName), ("lname", AttrKind::Surname),
//! #     ("contact", AttrKind::Phone), ("email", AttrKind::Email)])?;
//! // Same schemas and MDs as the quickstart above.
//! let engine = EngineBuilder::new()
//!     .schemas(crm, orders)
//!     .md_text(
//!         "crm[mail] = orders[email] -> crm[first,last] <=> orders[fname,lname]\n\
//!          crm[last] = orders[lname] /\\ crm[first] ~d orders[fname] /\\ \
//!          crm[mobile] = orders[contact] -> \
//!          crm[first,last,mobile] <=> orders[fname,lname,contact]\n",
//!     )
//!     .target(&["first", "last", "mobile"], &["fname", "lname", "contact"])
//!     .build()?;
//! let mut service = MatchService::new(engine);
//!
//! // Upsert order records (field-name inputs, schema-checked).
//! let order = service.record_builder()
//!     .field("fname", "Marx").field("lname", "Clifford")
//!     .field("contact", "908-1111111").field("email", "mc@gm.com")
//!     .build()?;
//! service.upsert(RecordId(1), &order)?;
//!
//! // Point query with a CRM probe: matched ids + which RCK fired,
//! // stamped with the rule version.
//! let probe = service.probe_builder()
//!     .field("first", "Mark").field("last", "Clifford")
//!     .field("mobile", "908-1111111").field("mail", "mc@gm.com")
//!     .build()?;
//! let response = service.query(&probe)?;
//! assert_eq!(response.hits.len(), 1);
//! assert_eq!(response.version.number(), 1);
//!
//! // Hot-swap the rule set: the store survives, the version bumps.
//! let v2 = service.swap_rules(
//!     "crm[mail] = orders[email] /\\ crm[mobile] = orders[contact] -> \
//!      crm[first,last,mobile] <=> orders[fname,lname,contact]",
//! )?;
//! assert_eq!(v2.number(), 2);
//! assert_eq!(service.query(&probe)?.hits.len(), 1);
//!
//! // Explain the decision: per-atom trace + the MD deduction path.
//! let why = service.explain(&probe, RecordId(1))?;
//! assert!(why.matched);
//! assert!(why.keys.iter().any(|k| k.matched));
//! println!("{why}");
//! # Ok(()) }
//! ```
//!
//! ## Ranked matching
//!
//! MDs and RCKs are *boolean* — sound candidate generation. The
//! [`engine::ScoreModel`] compiled into every plan adds a calibrated
//! confidence on top: per-atom graded agreement features scored by a
//! Fellegi–Sunter model (EM-fitted when the builder is given
//! `statistics_from` samples, a clamped prior otherwise), always a
//! finite posterior in `[0, 1]`. [`MatchService::query_ranked`] returns
//! **exactly** the boolean hit set — scored, sorted, thresholded and
//! truncated — and [`MatchEngine::dedup_resolved`] /
//! [`MatchEngine::resolve_links`](engine::MatchEngine::resolve_links)
//! replace transitive-closure clusters with a one-to-one assignment
//! over the scored pairs:
//!
//! ```
//! use matchrules::engine::EngineBuilder;
//! use matchrules::core::schema::{AttrKind, Schema};
//! use matchrules::service::{MatchService, RecordId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let crm = Schema::kinded("crm", &[
//! #     ("first", AttrKind::GivenName), ("last", AttrKind::Surname),
//! #     ("mobile", AttrKind::Phone), ("mail", AttrKind::Email)])?;
//! # let orders = Schema::kinded("orders", &[
//! #     ("fname", AttrKind::GivenName), ("lname", AttrKind::Surname),
//! #     ("contact", AttrKind::Phone), ("email", AttrKind::Email)])?;
//! let engine = EngineBuilder::new()
//!     .schemas(crm, orders)
//!     .md_text(
//!         "crm[mail] = orders[email] -> crm[first,last] <=> orders[fname,lname]\n\
//!          crm[last] = orders[lname] /\\ crm[first] ~d orders[fname] /\\ \
//!          crm[mobile] = orders[contact] -> \
//!          crm[first,last,mobile] <=> orders[fname,lname,contact]\n",
//!     )
//!     .target(&["first", "last", "mobile"], &["fname", "lname", "contact"])
//!     .build()?;
//! let mut service = MatchService::new(engine);
//! for (id, fname, email) in [(1, "Marx", "mc@gm.com"), (2, "Nora", "mc@gm.com")] {
//!     let order = service.record_builder()
//!         .field("fname", fname).field("lname", "Clifford")
//!         .field("contact", "908-1111111").field("email", email)
//!         .build()?;
//!     service.upsert(RecordId(id), &order)?;
//! }
//!
//! let probe = service.probe_builder()
//!     .field("first", "Mark").field("last", "Clifford")
//!     .field("mobile", "908-1111111").field("mail", "mc@gm.com")
//!     .build()?;
//! // Same hit set as `query`, best-first with calibrated scores.
//! let ranked = service.query_ranked(&probe, 10, 0.0)?;
//! assert_eq!(ranked.hits.len(), service.query(&probe)?.hits.len());
//! for pair in ranked.hits.windows(2) {
//!     assert!(pair[0].score >= pair[1].score);
//! }
//! for hit in &ranked.hits {
//!     assert!(hit.score.is_finite() && (0.0..=1.0).contains(&hit.score));
//! }
//! // `top_k` truncates; a `min_score` threshold filters; NaN is an error.
//! assert_eq!(service.query_ranked(&probe, 1, 0.0)?.hits.len(), 1);
//! assert!(service.query_ranked(&probe, 10, f64::NAN).is_err());
//! # Ok(()) }
//! ```
//!
//! The same calibrated path is served concurrently by
//! [`server::MatchServer::query_ranked`] (sharded, cached by
//! `(probe, top_k bucket, min_score)`, byte-identical across thread and
//! shard counts) and over the wire via
//! [`server::MatchClient::query_ranked`].
//!
//! ## Refining rules against labeled data
//!
//! Everything above *executes* the rules you wrote; the [`refine`]
//! module *improves* them. A [`refine::LabelStore`] holds labeled
//! positive/negative record pairs (generated from a
//! [`GroundTruth`](data::dirty::GroundTruth) or appended from live
//! feedback), and a [`refine::Refiner`] grows a candidate pool from the
//! serving plan's rules — mined proposals plus per-atom θ-threshold
//! sweeps — evaluates every candidate on the labels through the indexed
//! engine, and selects the F_β-maximizing subset. The resulting
//! [`refine::Refinement`] hot-swaps into a running service:
//!
//! ```
//! use matchrules::data::dirty::{generate_dirty, NoiseConfig};
//! use matchrules::engine::{EngineBuilder, Preset};
//! use matchrules::refine::{LabelStore, Refiner};
//! use matchrules::service::MatchService;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Dirty data with known ground truth (the §6.2 noise ladder).
//! let shape = Preset::Extended.paper_setting();
//! let data = generate_dirty(&shape.pair, &shape.target, 40,
//!     &NoiseConfig { seed: 7, ..NoiseConfig::default() });
//!
//! // A service running a deliberately weak rule: one exact key.
//! let engine = EngineBuilder::new()
//!     .schema_pair(shape.pair)
//!     .md_text(
//!         "credit[email] = billing[email] -> \
//!          credit[FN,MN,LN,street,city,county,state,zip,tel,email,gender] <=> \
//!          billing[FN,MN,LN,street,city,county,state,zip,phn,email,gender]",
//!     )
//!     .target_ids(shape.target)
//!     .build()?;
//! let mut service = MatchService::new(engine);
//!
//! // Ground truth -> labels, labels -> selected θ-tuned rules.
//! let labels = LabelStore::from_truth(&data.credit, &data.billing, &data.truth, 2)?;
//! let refinement = Refiner::new(service.plan(), service.registry()).refine(&labels)?;
//! assert!(refinement.report.after.f1() >= refinement.report.before.f1());
//!
//! // Deploy: the store survives, the version bumps, the operator
//! // world extends (θ-variants arrive as aliased operators).
//! let v2 = service.swap_rules_refined(&refinement)?;
//! assert_eq!(v2.number(), 2);
//! # Ok(()) }
//! ```
//!
//! The same loop runs against a live [`server::MatchServer`] — labels
//! stream in over the wire (`SubmitLabels`), and a `Refine` request
//! selects and deploys without restarting
//! ([`server::MatchClient::submit_labels`] /
//! [`server::MatchClient::refine`]).
//!
//! ## Parallel execution
//!
//! The engine runs on a std-only work pool (`matchrules-runtime`):
//! windowing passes, blocking partitions and pairwise key evaluation all
//! execute in parallel, and the output is **byte-identical** to a serial
//! run. Configure it with [`engine::ExecConfig`] on the builder, or per
//! engine — thread sweeps reuse one compiled plan:
//!
//! ```
//! use matchrules::engine::{ExecConfig, Preset, Threads};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Compile with an explicit thread policy (default: Threads::Auto).
//! let engine = Preset::Example11.builder()
//!     .exec(ExecConfig { threads: Threads::Fixed(2) })
//!     .build()?;
//! assert_eq!(engine.threads(), 2);
//!
//! // Re-target the same plan without recompiling.
//! let instance = matchrules::data::fig1::instance_for_pair(engine.plan().pair());
//! let serial = engine.with_exec(ExecConfig::serial());
//! let a = serial.match_pairs(instance.left(), instance.right())?;
//! let b = engine.match_pairs(instance.left(), instance.right())?;
//! assert_eq!(a.pairs(), b.pairs()); // parallel == serial, byte for byte
//! assert_eq!(b.threads(), 2);       // provenance in every report
//! for stage in b.stages() {
//!     println!("{}: {:?}", stage.name, stage.elapsed); // per-stage timing
//! }
//! # Ok(()) }
//! ```
//!
//! ## Workspace layers
//!
//! * [`core`] (`matchrules-core`) — schemas (+ `AttrKind` metadata), MDs,
//!   RCKs, MDClosure, findRCKs, the axiom system, the MD parser and the
//!   paper's preset settings;
//! * [`simdist`] (`matchrules-simdist`) — similarity metrics and operators
//!   (Damerau–Levenshtein, Jaro–Winkler, q-grams, Soundex, …);
//! * [`data`] (`matchrules-data`) — relations, the dynamic (enforcement)
//!   semantics, the Fig. 1 instance, and the §6 synthetic-data protocol;
//! * [`matcher`] (`matchrules-matcher`) — Fellegi–Sunter + EM, Sorted
//!   Neighborhood, blocking, windowing and quality metrics;
//! * `matchrules-runtime` — the std-only parallel execution runtime
//!   (work pool, parallel sort, deterministic ordered reductions);
//! * [`engine`] — the schema-agnostic compile-once API over all of it;
//! * [`refine`] — the rule-refinement loop: labeled pairs → candidate
//!   pool (mining + θ-sweeps) → greedy F_β selection → hot-swappable
//!   [`Refinement`](refine::Refinement).
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench` for
//! the harness regenerating every figure of the paper's evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod refine;
pub mod server;
pub mod service;

pub use matchrules_core as core;
pub use matchrules_data as data;
pub use matchrules_matcher as matcher;
pub use matchrules_simdist as simdist;

pub use engine::{EngineBuilder, MatchEngine, MatchPlan, MatchReport, Preset};
pub use service::{MatchService, Record, RecordId, RuleVersion, ServiceError};
