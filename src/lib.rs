//! # matchrules
//!
//! A from-scratch Rust implementation of
//!
//! > Wenfei Fan, Xibei Jia, Jianzhong Li, Shuai Ma.
//! > *Reasoning about Record Matching Rules.* VLDB 2009.
//!
//! Matching dependencies (MDs) declare, over a pair of possibly different
//! and unreliable relations, that *if certain attributes are pairwise
//! similar, certain other attributes identify the same real-world value*.
//! Reasoning about MDs (the deduction relation `Σ |=m ϕ`, decided by the
//! MDClosure algorithm) derives **relative candidate keys (RCKs)** — minimal
//! lists of attributes to compare, and the operators to compare them with —
//! which improve the quality and efficiency of record matching, blocking
//! and windowing.
//!
//! This facade crate re-exports the four workspace layers:
//!
//! * [`core`] (`matchrules-core`) — schemas, MDs, RCKs, MDClosure,
//!   findRCKs, the axiom system, the MD parser and the paper's settings;
//! * [`simdist`] (`matchrules-simdist`) — similarity metrics and operators
//!   (Damerau–Levenshtein, Jaro–Winkler, q-grams, Soundex, …);
//! * [`data`] (`matchrules-data`) — relations, the dynamic (enforcement)
//!   semantics, the Fig. 1 instance, and the §6 synthetic-data protocol;
//! * [`matcher`] (`matchrules-matcher`) — Fellegi–Sunter + EM, Sorted
//!   Neighborhood, blocking, windowing and quality metrics.
//!
//! ## Quickstart
//!
//! ```
//! use matchrules::core::{paper, cost::CostModel, rck::find_rcks};
//!
//! let setting = paper::example_1_1();
//! let mut cost = CostModel::uniform();
//! let rcks = find_rcks(&setting.sigma, &setting.target, 10, &mut cost);
//! assert!(rcks.keys.len() >= 4);
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench` for
//! the harness regenerating every figure of the paper's evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use matchrules_core as core;
pub use matchrules_data as data;
pub use matchrules_matcher as matcher;
pub use matchrules_simdist as simdist;
