//! [`LabelStore`]: deduplicated positive/negative record pairs — the
//! labeled evidence a refinement run selects rules against.
//!
//! Labels arrive from two directions:
//!
//! * **Generated truth** — [`LabelStore::from_truth`] walks a
//!   [`GroundTruth`]'s deterministic
//!   [`labeled_pairs`](GroundTruth::labeled_pairs) enumeration, turning
//!   the §6.2 noise-ladder generators into labeled-data factories.
//! * **Live feedback** — [`LabelStore::insert`] /
//!   [`LabelStore::extend_pairs`] append individual judgements (a human
//!   confirming or rejecting a served match), which is what the wire's
//!   `SubmitLabels` frame feeds.
//!
//! The store is value-keyed: the same (left, right) value pair is held
//! once, re-submitting it with the same label is an idempotent no-op, and
//! re-submitting it with the *opposite* label is a typed
//! [`LabelError::Conflict`] — contradictory evidence must be resolved by
//! the labeler, not silently averaged away.

use crate::service::Record;
use matchrules_core::schema::{Schema, Side};
use matchrules_data::dirty::GroundTruth;
use matchrules_data::relation::Relation;
use matchrules_data::value::Value;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// One labeled record pair.
#[derive(Debug, Clone)]
pub struct LabeledPair {
    /// The probe-side (left/credit) record.
    pub left: Record,
    /// The store-side (right/billing) record.
    pub right: Record,
    /// Whether the pair refers to the same real-world entity.
    pub is_match: bool,
}

/// Why a label was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LabelError {
    /// The pair is already labeled with the opposite polarity.
    Conflict {
        /// Index of the existing pair in [`LabelStore::pairs`].
        index: usize,
        /// The label the store already holds for the pair.
        existing: bool,
    },
    /// A record was built against a different schema than the store's.
    SchemaMismatch {
        /// Which side of the pair mismatched.
        side: Side,
        /// Name of the schema the store expects on that side.
        expected: String,
        /// Name of the schema the record carries.
        got: String,
    },
}

impl fmt::Display for LabelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LabelError::Conflict { index, existing } => write!(
                f,
                "pair is already labeled {} (labeled pair #{index}); contradictory labels \
                 must be resolved by the labeler",
                if *existing { "positive" } else { "negative" }
            ),
            LabelError::SchemaMismatch { side, expected, got } => write!(
                f,
                "{} record carries schema {got}, the label store expects {expected}",
                match side {
                    Side::Left => "left",
                    Side::Right => "right",
                }
            ),
        }
    }
}

impl std::error::Error for LabelError {}

/// Deduplicated labeled record pairs, keyed by value content.
#[derive(Debug, Clone)]
pub struct LabelStore {
    probe_schema: Arc<Schema>,
    store_schema: Arc<Schema>,
    pairs: Vec<LabeledPair>,
    by_values: HashMap<(Vec<Value>, Vec<Value>), usize>,
    positives: usize,
}

impl LabelStore {
    /// An empty store accepting left records of `probe_schema` and right
    /// records of `store_schema`.
    pub fn new(probe_schema: Arc<Schema>, store_schema: Arc<Schema>) -> Self {
        LabelStore {
            probe_schema,
            store_schema,
            pairs: Vec::new(),
            by_values: HashMap::new(),
            positives: 0,
        }
    }

    /// Builds a store from generated ground truth: every true
    /// (credit, billing) pair as a positive plus `negatives_per_positive`
    /// deterministic non-matches per billing tuple (see
    /// [`GroundTruth::labeled_pairs`]). The relations must be the ones the
    /// truth was generated with.
    pub fn from_truth(
        credit: &Relation,
        billing: &Relation,
        truth: &GroundTruth,
        negatives_per_positive: usize,
    ) -> Result<Self, LabelError> {
        let mut store = LabelStore::new(credit.schema().clone(), billing.schema().clone());
        for (c, b, is_match) in truth.labeled_pairs(negatives_per_positive) {
            let left = Record::from_values(
                store.probe_schema.clone(),
                credit.tuples()[c].values().to_vec(),
            )
            .expect("relation tuples instantiate their own schema");
            let right = Record::from_values(
                store.store_schema.clone(),
                billing.tuples()[b].values().to_vec(),
            )
            .expect("relation tuples instantiate their own schema");
            store.insert(left, right, is_match)?;
        }
        Ok(store)
    }

    /// Adds one labeled pair. Returns `Ok(true)` when the pair is new,
    /// `Ok(false)` when it was already present with the same label, and
    /// [`LabelError::Conflict`] when it was already present with the
    /// opposite label.
    pub fn insert(
        &mut self,
        left: Record,
        right: Record,
        is_match: bool,
    ) -> Result<bool, LabelError> {
        for (record, expected, side) in
            [(&left, &self.probe_schema, Side::Left), (&right, &self.store_schema, Side::Right)]
        {
            if !Arc::ptr_eq(record.schema(), expected) && record.schema() != expected {
                return Err(LabelError::SchemaMismatch {
                    side,
                    expected: expected.name().to_owned(),
                    got: record.schema().name().to_owned(),
                });
            }
        }
        let key = (left.values().to_vec(), right.values().to_vec());
        if let Some(&index) = self.by_values.get(&key) {
            let existing = self.pairs[index].is_match;
            return if existing == is_match {
                Ok(false)
            } else {
                Err(LabelError::Conflict { index, existing })
            };
        }
        self.by_values.insert(key, self.pairs.len());
        self.pairs.push(LabeledPair { left, right, is_match });
        if is_match {
            self.positives += 1;
        }
        Ok(true)
    }

    /// Adds a batch of labeled pairs (live feedback); returns how many
    /// were new. Stops at the first conflict.
    pub fn extend_pairs(
        &mut self,
        items: impl IntoIterator<Item = (Record, Record, bool)>,
    ) -> Result<usize, LabelError> {
        let mut added = 0;
        for (left, right, is_match) in items {
            if self.insert(left, right, is_match)? {
                added += 1;
            }
        }
        Ok(added)
    }

    /// The labeled pairs, in insertion order.
    pub fn pairs(&self) -> &[LabeledPair] {
        &self.pairs
    }

    /// Number of distinct labeled pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the store holds no labels.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Number of positive (matching) pairs.
    pub fn positives(&self) -> usize {
        self.positives
    }

    /// Number of negative (non-matching) pairs.
    pub fn negatives(&self) -> usize {
        self.pairs.len() - self.positives
    }

    /// Schema of the left (probe) side.
    pub fn probe_schema(&self) -> &Arc<Schema> {
        &self.probe_schema
    }

    /// Schema of the right (store) side.
    pub fn store_schema(&self) -> &Arc<Schema> {
        &self.store_schema
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matchrules_core::paper;
    use matchrules_data::dirty::{generate_dirty, NoiseConfig};

    fn record(schema: &Arc<Schema>, values: &[&str]) -> Record {
        Record::from_values(schema.clone(), values.iter().map(Value::str).collect()).unwrap()
    }

    fn two_schemas() -> (Arc<Schema>, Arc<Schema>) {
        let left = Arc::new(Schema::text("probe", &["name", "phone"]).unwrap());
        let right = Arc::new(Schema::text("store", &["name", "phone"]).unwrap());
        (left, right)
    }

    #[test]
    fn dedup_and_conflicts() {
        let (l, r) = two_schemas();
        let mut store = LabelStore::new(l.clone(), r.clone());
        let a = record(&l, &["mark", "908"]);
        let b = record(&r, &["marx", "908"]);
        assert!(store.insert(a.clone(), b.clone(), true).unwrap());
        // Idempotent re-submission.
        assert!(!store.insert(a.clone(), b.clone(), true).unwrap());
        assert_eq!(store.len(), 1);
        assert_eq!(store.positives(), 1);
        // Opposite label is a typed conflict, not an overwrite.
        let err = store.insert(a, b, false).unwrap_err();
        assert_eq!(err, LabelError::Conflict { index: 0, existing: true });
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn schema_mismatch_is_typed() {
        let (l, r) = two_schemas();
        let mut store = LabelStore::new(l.clone(), r.clone());
        let wrong = record(&r, &["mark", "908"]);
        let b = record(&r, &["marx", "908"]);
        let err = store.insert(wrong, b, true).unwrap_err();
        assert!(matches!(err, LabelError::SchemaMismatch { side: Side::Left, .. }));
    }

    #[test]
    fn from_truth_covers_every_true_pair() {
        let setting = paper::extended();
        let cfg = NoiseConfig { seed: 0xFEED, ..NoiseConfig::default() };
        let data = generate_dirty(&setting.pair, &setting.target, 30, &cfg);
        let store = LabelStore::from_truth(&data.credit, &data.billing, &data.truth, 2).unwrap();
        assert_eq!(store.positives(), data.truth.total_true_pairs());
        assert!(store.negatives() > 0);
        assert!(store.pairs().iter().all(|p| p.left.schema() == store.probe_schema()));
    }
}
