//! Deterministic rule selection in the spirit of Kolaitis–Popa–Qian's
//! knowledge refinement: pick the candidate subset maximizing F_β on the
//! labeled sample.
//!
//! Two regimes, both pure bit arithmetic over the
//! [`Coverage`](super::Coverage) bitsets and therefore reproducible at
//! any thread count:
//!
//! * **Exhaustive** — at or below
//!   [`SelectionConfig::exhaustive_cutoff`] candidates, every subset is
//!   scored. Ties break toward *fewer* rules, then the lexicographically
//!   smallest index set, so the winner is minimal: dropping any chosen
//!   rule strictly lowers F_β.
//! * **Greedy** — above the cutoff, marginal-gain greedy from two
//!   starts (the empty set, and the seed set so the result can never
//!   fall below the serving rules' own score), each followed by a prune
//!   pass that removes rules whose removal does not lower the score.
//!   The better pruned result wins (higher F_β, then fewer rules, then
//!   lexicographic). Additions require strictly positive gain and break
//!   ties toward the lowest candidate index.
//!
//! Either way, every selected rule has strictly positive marginal gain
//! with respect to the final set — the invariant the property tests pin.

use super::evaluate::{Bits, Coverage};
use matchrules_matcher::metrics::MatchQuality;

/// Selection parameters.
#[derive(Debug, Clone)]
pub struct SelectionConfig {
    /// The β of the F_β objective (1.0 = F1; larger favors recall).
    pub beta: f64,
    /// Candidate-count bound for the exact exhaustive regime.
    pub exhaustive_cutoff: usize,
}

impl Default for SelectionConfig {
    fn default() -> Self {
        SelectionConfig { beta: 1.0, exhaustive_cutoff: 10 }
    }
}

/// Outcome of a selection run.
#[derive(Debug, Clone)]
pub struct Selection {
    /// Chosen candidate indices, ascending.
    pub chosen: Vec<usize>,
    /// F_β of the chosen set on the labeled sample.
    pub score: f64,
    /// Confusion counts of the chosen set.
    pub quality: MatchQuality,
    /// Per chosen rule: `F_β(S) − F_β(S ∖ {rule})` — strictly positive.
    pub marginal_gains: Vec<(usize, f64)>,
    /// Whether the exact exhaustive regime ran.
    pub exhaustive: bool,
}

fn union_of(cov: &Coverage, chosen: &[usize]) -> Bits {
    let mut union = Bits::new(cov.n_pairs());
    for &i in chosen {
        union.or_assign(&cov.accepts[i]);
    }
    union
}

fn score_of(cov: &Coverage, chosen: &[usize], beta: f64) -> f64 {
    cov.quality_of_bits(&union_of(cov, chosen)).f_beta(beta)
}

/// `(score desc, |set| asc, lexicographic asc)` — the stable total order
/// every regime breaks ties with. Returns `true` when `a` beats `b`.
fn beats(a: (f64, &[usize]), b: (f64, &[usize])) -> bool {
    match a.0.total_cmp(&b.0) {
        std::cmp::Ordering::Greater => true,
        std::cmp::Ordering::Less => false,
        std::cmp::Ordering::Equal => match a.1.len().cmp(&b.1.len()) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => a.1 < b.1,
        },
    }
}

/// Removes rules whose removal does not lower the score, lowest index
/// first, until a fixpoint: afterwards every remaining rule has strictly
/// positive marginal gain. The score never decreases.
fn prune(cov: &Coverage, chosen: &mut Vec<usize>, beta: f64) {
    loop {
        let current = score_of(cov, chosen, beta);
        let mut removed = false;
        for pos in 0..chosen.len() {
            let mut without = chosen.clone();
            without.remove(pos);
            if score_of(cov, &without, beta) >= current {
                *chosen = without;
                removed = true;
                break;
            }
        }
        if !removed {
            return;
        }
    }
}

/// Greedy marginal-gain selection from `start`, requiring strictly
/// positive gain per addition, ties toward the lowest candidate index.
fn greedy_from(cov: &Coverage, start: &[usize], beta: f64) -> Vec<usize> {
    let mut chosen: Vec<usize> = start.to_vec();
    chosen.sort_unstable();
    chosen.dedup();
    let mut union = union_of(cov, &chosen);
    let mut current = cov.quality_of_bits(&union).f_beta(beta);
    loop {
        let mut best: Option<(usize, f64)> = None;
        for cand in 0..cov.n_candidates() {
            if chosen.contains(&cand) {
                continue;
            }
            let mut with = union.clone();
            with.or_assign(&cov.accepts[cand]);
            let score = cov.quality_of_bits(&with).f_beta(beta);
            let improves = match best {
                None => score > current,
                Some((_, best_score)) => score > best_score,
            };
            if improves {
                best = Some((cand, score));
            }
        }
        let Some((cand, score)) = best else { return chosen };
        chosen.push(cand);
        chosen.sort_unstable();
        union.or_assign(&cov.accepts[cand]);
        current = score;
    }
}

/// Exhaustive search over all subsets under the [`beats`] order.
fn exhaustive(cov: &Coverage, beta: f64) -> Vec<usize> {
    let n = cov.n_candidates();
    let mut best: Vec<usize> = Vec::new();
    let mut best_score = score_of(cov, &best, beta);
    for mask in 1u64..(1u64 << n) {
        let chosen: Vec<usize> = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
        let score = score_of(cov, &chosen, beta);
        if beats((score, &chosen), (best_score, &best)) {
            best = chosen;
            best_score = score;
        }
    }
    best
}

/// Selects the candidate subset maximizing F_β on the coverage, with
/// `seed` (the serving rules' pool indices) as the floor the greedy
/// regime can never fall below.
pub fn select(cov: &Coverage, seed: &[usize], cfg: &SelectionConfig) -> Selection {
    let beta = if cfg.beta.is_finite() && cfg.beta > 0.0 { cfg.beta } else { 1.0 };
    let n = cov.n_candidates();
    let ran_exhaustive = n <= cfg.exhaustive_cutoff && n < 64;
    let chosen = if ran_exhaustive {
        exhaustive(cov, beta)
    } else {
        let mut from_empty = greedy_from(cov, &[], beta);
        prune(cov, &mut from_empty, beta);
        let mut from_seed = greedy_from(cov, seed, beta);
        prune(cov, &mut from_seed, beta);
        let empty_score = score_of(cov, &from_empty, beta);
        let seed_score = score_of(cov, &from_seed, beta);
        if beats((empty_score, &from_empty), (seed_score, &from_seed)) {
            from_empty
        } else {
            from_seed
        }
    };
    let quality = cov.quality_of(&chosen);
    let score = quality.f_beta(beta);
    let marginal_gains = chosen
        .iter()
        .map(|&rule| {
            let without: Vec<usize> = chosen.iter().copied().filter(|&r| r != rule).collect();
            (rule, score - score_of(cov, &without, beta))
        })
        .collect();
    Selection { chosen, score, quality, marginal_gains, exhaustive: ran_exhaustive }
}
