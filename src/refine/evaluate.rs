//! Per-candidate evaluation on the labeled set — **through the indexed
//! engine**, not a bespoke nested loop.
//!
//! The evaluator compiles one [`RelativeKey`] per candidate rule (its LHS
//! conjunction), builds a [`MatchIndex`] over the distinct right-side
//! label records, and probes it with every distinct left-side record.
//! Pairs the index does not return fired no candidate; for the pairs it
//! does return, [`MatchIndex::explain`]'s per-key trace — the same fired-
//! RCK provenance the serving layer exposes — attributes the hit to
//! *every* candidate whose key matched, not just the first one the
//! short-circuiting query path happened to test. The result is one
//! coverage bitset per candidate over the labeled pairs, from which any
//! subset's confusion counts (and hence its F_β) are pure bit arithmetic.
//!
//! Everything here is sequential and index-driven, so coverage — and
//! every selection derived from it — is identical at any thread count.

use super::labels::LabelStore;
use super::pool::CandidatePool;
use super::RefineError;
use crate::engine::{schemas_compatible, MatchIndex};
use matchrules_core::relative_key::RelativeKey;
use matchrules_core::schema::Side;
use matchrules_data::eval::RuntimeOps;
use matchrules_data::relation::{Relation, Tuple, TupleId};
use matchrules_data::value::Value;
use matchrules_matcher::metrics::MatchQuality;
use std::collections::HashMap;
use std::sync::Arc;

/// A fixed-size bitset over the labeled pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Bits {
    blocks: Vec<u64>,
    len: usize,
}

impl Bits {
    pub(crate) fn new(len: usize) -> Self {
        Bits { blocks: vec![0; len.div_ceil(64)], len }
    }

    pub(crate) fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.blocks[i / 64] |= 1u64 << (i % 64);
    }

    pub(crate) fn or_assign(&mut self, other: &Bits) {
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= b;
        }
    }

    pub(crate) fn count(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    pub(crate) fn and_count(&self, other: &Bits) -> usize {
        self.blocks.iter().zip(&other.blocks).map(|(a, b)| (a & b).count_ones() as usize).sum()
    }
}

/// Per-candidate coverage of the labeled pairs: which pairs each
/// candidate's LHS accepts, plus the positive-label mask.
#[derive(Debug, Clone)]
pub struct Coverage {
    pub(crate) accepts: Vec<Bits>,
    pub(crate) positives: Bits,
    n_pairs: usize,
    n_positives: usize,
}

impl Coverage {
    /// Number of labeled pairs evaluated.
    pub fn n_pairs(&self) -> usize {
        self.n_pairs
    }

    /// Number of positively labeled pairs.
    pub fn n_positives(&self) -> usize {
        self.n_positives
    }

    /// Number of candidates evaluated.
    pub fn n_candidates(&self) -> usize {
        self.accepts.len()
    }

    /// Confusion counts of the *union* of the given candidates on the
    /// labeled set: a pair is returned iff at least one chosen
    /// candidate's LHS accepts it.
    pub fn quality_of(&self, chosen: &[usize]) -> MatchQuality {
        let mut union = Bits::new(self.n_pairs);
        for &i in chosen {
            union.or_assign(&self.accepts[i]);
        }
        self.quality_of_bits(&union)
    }

    pub(crate) fn quality_of_bits(&self, union: &Bits) -> MatchQuality {
        let tp = union.and_count(&self.positives);
        let fp = union.count() - tp;
        MatchQuality {
            true_positives: tp,
            false_positives: fp,
            false_negatives: self.n_positives - tp,
        }
    }
}

/// Builds per-candidate coverage of `labels` for every rule in `pool` by
/// probing a candidate-keyed [`MatchIndex`] (see the module docs).
pub fn evaluate(pool: &CandidatePool, labels: &LabelStore) -> Result<Coverage, RefineError> {
    if labels.is_empty() {
        return Err(RefineError::EmptyLabels);
    }
    if pool.is_empty() {
        return Err(RefineError::NoCandidates);
    }
    for (schema, expected, side) in [
        (labels.probe_schema(), pool.pair().left(), Side::Left),
        (labels.store_schema(), pool.pair().right(), Side::Right),
    ] {
        if !schemas_compatible(schema.as_ref(), expected.as_ref()) {
            return Err(RefineError::SchemaMismatch {
                side,
                expected: expected.name().to_owned(),
                got: schema.name().to_owned(),
            });
        }
    }

    // Distinct right-side records become the indexed relation; distinct
    // left-side records become the probes. Pairs sharing a side share the
    // index work.
    let mut right_rel = Relation::new(pool.pair().right().clone());
    let mut right_ids: HashMap<Vec<Value>, TupleId> = HashMap::new();
    let mut left_probes: Vec<(Tuple, Vec<(usize, TupleId)>)> = Vec::new();
    let mut left_index: HashMap<Vec<Value>, usize> = HashMap::new();
    for (pair_idx, pair) in labels.pairs().iter().enumerate() {
        let right_values = pair.right.values().to_vec();
        let next_id = right_ids.len() as TupleId;
        let right_id = *right_ids.entry(right_values.clone()).or_insert_with(|| {
            right_rel.push(Tuple::new(next_id, right_values));
            next_id
        });
        let left_values = pair.left.values().to_vec();
        let slot = *left_index.entry(left_values.clone()).or_insert_with(|| {
            left_probes.push((Tuple::new(0, left_values), Vec::new()));
            left_probes.len() - 1
        });
        left_probes[slot].1.push((pair_idx, right_id));
    }

    // One key per candidate: its LHS conjunction. Key k in the index is
    // candidate k in the pool, which is what makes the per-key trace an
    // attribution.
    let keys: Vec<RelativeKey> =
        pool.rules().iter().map(|r| RelativeKey::new(r.md.lhs().to_vec())).collect();
    let runtime = Arc::new(RuntimeOps::resolve(pool.ops(), pool.registry())?);
    let index = MatchIndex::build(pool.pair().left().arity(), &right_rel, &keys, &[], runtime)?;

    let n_pairs = labels.len();
    let mut accepts = vec![Bits::new(n_pairs); pool.len()];
    for (probe, targets) in &left_probes {
        let outcome = index.query(probe);
        if outcome.hits.is_empty() {
            continue;
        }
        let hit_ids: std::collections::HashSet<TupleId> =
            outcome.hits.iter().map(|h| h.id).collect();
        for &(pair_idx, right_id) in targets {
            if !hit_ids.contains(&right_id) {
                continue;
            }
            let trace = index.explain(probe, right_id)?;
            for key_trace in &trace.keys {
                if key_trace.matched {
                    accepts[key_trace.key].set(pair_idx);
                }
            }
        }
    }

    let mut positives = Bits::new(n_pairs);
    for (pair_idx, pair) in labels.pairs().iter().enumerate() {
        if pair.is_match {
            positives.set(pair_idx);
        }
    }
    let n_positives = positives.count();
    Ok(Coverage { accepts, positives, n_pairs, n_positives })
}
