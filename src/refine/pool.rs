//! [`CandidatePool`]: the rule candidates a refinement run selects from,
//! together with the operator world they are compiled against.
//!
//! A pool starts from the serving plan's rule set (the *seed*) and its
//! interned [`OperatorTable`], then grows three ways:
//!
//! * **hand-written MDs** — parsed from the textual syntax or added
//!   programmatically;
//! * **discovery proposals** — [`DiscoveredMd`]s from the
//!   [`matcher::discovery`](matchrules_matcher::discovery) miner;
//! * **θ-threshold sweeps** — every fuzzy LHS atom of every candidate is
//!   expanded into a small grid of threshold variants. A variant operator
//!   is an [`AliasOp`] (e.g. `≈dl@0.70` wrapping Damerau–Levenshtein at
//!   θ = 0.70) interned into the pool's table and registered in the
//!   pool's registry, so selected variants deploy like any other rule.
//!
//! Interning is append-only, so the pool's table is always a superset of
//! the plan's: existing `OperatorId`s keep their meaning, which is what
//! lets the selected set hot-swap into a running service.

use matchrules_core::dependency::{MatchingDependency, SimilarityAtom};
use matchrules_core::operators::{OperatorId, OperatorTable};
use matchrules_core::parser::parse_md_set;
use matchrules_core::schema::SchemaPair;
use matchrules_matcher::discovery::DiscoveredMd;
use matchrules_simdist::ops::{
    AliasOp, DamerauOp, JaroWinklerOp, LevenshteinOp, OpRegistry, QgramOp, SimilarityOp,
    TokenJaccardOp,
};
use std::sync::Arc;

use super::RefineError;

/// Where a candidate rule came from — kept for the refinement report.
#[derive(Debug, Clone, PartialEq)]
pub enum CandidateOrigin {
    /// Part of the serving plan's rule set the refiner started from.
    Seed,
    /// Hand-written (textual or programmatic) addition.
    Handwritten,
    /// Proposed by the [`matchrules_matcher::discovery`] miner.
    Discovered {
        /// Sample pairs matching the rule's LHS.
        support: usize,
        /// Fraction of those whose RHS values agree.
        confidence: f64,
    },
    /// A θ-threshold variant of another candidate's fuzzy atom.
    ThetaSweep {
        /// Pool index of the candidate the variant was derived from.
        base: usize,
        /// The threshold the swept atom runs at.
        theta: f64,
    },
}

/// One candidate rule with its provenance.
#[derive(Debug, Clone)]
pub struct CandidateRule {
    /// The rule, compiled against the pool's operator table.
    pub md: MatchingDependency,
    /// Where it came from.
    pub origin: CandidateOrigin,
}

/// The candidate rules of one refinement run plus their operator world.
#[derive(Debug, Clone)]
pub struct CandidatePool {
    pair: SchemaPair,
    ops: OperatorTable,
    registry: OpRegistry,
    rules: Vec<CandidateRule>,
    seed_len: usize,
}

/// The executable θ-variant of a fuzzy operator, by base-operator name.
/// `None` for operators without a tunable threshold (equality, Soundex,
/// digit projection…).
fn theta_variant(base: &str, theta: f64) -> Option<Arc<dyn SimilarityOp>> {
    match base {
        "≈d" | "≈dl" => Some(Arc::new(DamerauOp::with_threshold(theta))),
        "≈lev" => Some(Arc::new(LevenshteinOp::with_threshold(theta))),
        "≈jw" => Some(Arc::new(JaroWinklerOp::with_min(theta))),
        "≈qg" => Some(Arc::new(QgramOp::new(2, theta))),
        "≈tok" => Some(Arc::new(TokenJaccardOp::with_min(theta))),
        _ => None,
    }
}

impl CandidatePool {
    /// A pool seeded with `seed` rules against (a copy of) `ops` and
    /// `registry` — in practice the serving plan's table/registry, so the
    /// pool's world extends the plan's.
    pub fn new(
        pair: SchemaPair,
        ops: OperatorTable,
        registry: OpRegistry,
        seed: &[MatchingDependency],
    ) -> Self {
        let rules = seed
            .iter()
            .map(|md| CandidateRule { md: md.clone(), origin: CandidateOrigin::Seed })
            .collect::<Vec<_>>();
        let seed_len = rules.len();
        CandidatePool { pair, ops, registry, rules, seed_len }
    }

    /// Adds hand-written MDs in the textual syntax (newline-separated;
    /// operator symbols are interned into the pool's table). Returns how
    /// many rules were added.
    pub fn add_text(&mut self, text: &str) -> Result<usize, RefineError> {
        let mds = parse_md_set(text, &self.pair, &mut self.ops)?;
        Ok(self.add_rules(mds))
    }

    /// Adds programmatic MDs built against the pool's operator table
    /// (out-of-range operator ids are rejected). Duplicates of existing
    /// candidates are skipped; returns how many were added.
    pub fn add_rules(&mut self, mds: impl IntoIterator<Item = MatchingDependency>) -> usize {
        let mut added = 0;
        for md in mds {
            if md.lhs().iter().any(|a| a.op.0 as usize >= self.ops.len()) {
                continue;
            }
            if self.push_unique(md, CandidateOrigin::Handwritten) {
                added += 1;
            }
        }
        added
    }

    /// Adds miner proposals with their sample statistics. Duplicates of
    /// existing candidates are skipped; returns how many were added.
    pub fn add_discovered(&mut self, mined: &[DiscoveredMd]) -> usize {
        let mut added = 0;
        for d in mined {
            let origin =
                CandidateOrigin::Discovered { support: d.support, confidence: d.confidence };
            if self.push_unique(d.md.clone(), origin) {
                added += 1;
            }
        }
        added
    }

    /// Expands every fuzzy LHS atom of every current candidate into one
    /// variant per threshold in `grid`: the swept atom's operator is
    /// replaced by an aliased θ-variant (`≈dl@0.70`, …), interned and
    /// registered in the pool's world. Non-fuzzy atoms (equality,
    /// phonetic codes) are left alone. Returns how many variants were
    /// added.
    pub fn sweep_thetas(&mut self, grid: &[f64]) -> usize {
        let base_len = self.rules.len();
        let mut added = 0;
        for rule_idx in 0..base_len {
            // Sweeping a sweep would square the grid; only originals.
            if matches!(self.rules[rule_idx].origin, CandidateOrigin::ThetaSweep { .. }) {
                continue;
            }
            let md = self.rules[rule_idx].md.clone();
            for atom_idx in 0..md.lhs().len() {
                let base_name = self.ops.name(md.lhs()[atom_idx].op).to_owned();
                for &theta in grid {
                    if !(0.0..=1.0).contains(&theta) || !theta.is_finite() {
                        continue;
                    }
                    let Some(inner) = theta_variant(&base_name, theta) else { break };
                    let alias = format!("{base_name}@{theta:.2}");
                    let op_id = self.ops.intern(&alias);
                    if self.registry.get(&alias).is_none() {
                        self.registry.register(Arc::new(AliasOp::new(&alias, inner)));
                    }
                    let mut lhs: Vec<SimilarityAtom> = md.lhs().to_vec();
                    lhs[atom_idx] =
                        SimilarityAtom::new(lhs[atom_idx].left, lhs[atom_idx].right, op_id);
                    let variant = MatchingDependency::from_validated_parts(lhs, md.rhs().to_vec());
                    let origin = CandidateOrigin::ThetaSweep { base: rule_idx, theta };
                    if self.push_unique(variant, origin) {
                        added += 1;
                    }
                }
            }
        }
        added
    }

    fn push_unique(&mut self, md: MatchingDependency, origin: CandidateOrigin) -> bool {
        if self.rules.iter().any(|r| r.md == md) {
            return false;
        }
        self.rules.push(CandidateRule { md, origin });
        true
    }

    /// The candidate rules, seed first, in insertion order.
    pub fn rules(&self) -> &[CandidateRule] {
        &self.rules
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the pool holds no candidates.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Indices of the seed rules (always `0..seed_len`).
    pub fn seed_indices(&self) -> Vec<usize> {
        (0..self.seed_len).collect()
    }

    /// The pool's (extended) operator table.
    pub fn ops(&self) -> &OperatorTable {
        &self.ops
    }

    /// The pool's (extended) operator registry.
    pub fn registry(&self) -> &OpRegistry {
        &self.registry
    }

    /// The schema pair candidates are validated against.
    pub fn pair(&self) -> &SchemaPair {
        &self.pair
    }

    /// Renders candidate `idx` with relation/attribute/operator names.
    pub fn describe(&self, idx: usize) -> String {
        self.rules[idx].md.display(&self.pair, &self.ops).to_string()
    }

    /// Renders one LHS atom with relation/attribute/operator names, e.g.
    /// `credit[FN] ≈dl@0.70 billing[FN]`.
    pub fn atom_label(&self, atom: &SimilarityAtom) -> String {
        format!(
            "{}[{}] {} {}[{}]",
            self.pair.left().name(),
            self.pair.left().attr_name(atom.left),
            self.ops.name(atom.op),
            self.pair.right().name(),
            self.pair.right().attr_name(atom.right),
        )
    }

    /// All operator ids currently interned — what a discovery run over
    /// the pool's world may try as LHS operators.
    pub fn op_ids(&self) -> Vec<OperatorId> {
        self.ops.ids().collect()
    }
}
