//! Rule refinement: close the loop from labeled pairs to a selected,
//! θ-tuned, hot-swappable rule set.
//!
//! The paper's reasoning core deduces *how to evaluate* a rule set
//! (RCKs, §4); nothing upstream of this module improves the rule set
//! itself. Following Kolaitis, Popa & Qian's knowledge-refinement
//! framing — given candidate rules and labeled positive/negative pairs,
//! select the subset maximizing match quality — the refinement loop is:
//!
//! 1. **Label** — a [`LabelStore`] holds deduplicated positive/negative
//!    record pairs: generated from [`GroundTruth`] (the §6.2 noise
//!    ladder becomes a labeled-data factory via
//!    [`LabelStore::from_truth`]) and/or appended from live feedback
//!    ([`LabelStore::insert`], the wire's `SubmitLabels`).
//! 2. **Pool** — a [`CandidatePool`] seeds from the serving plan's
//!    rules, adds hand-written MDs and
//!    [`discovery`](matchrules_matcher::discovery) proposals mined from
//!    the labeled sample, and θ-sweeps every fuzzy atom into a grid of
//!    threshold variants (aliased operators like `≈dl@0.70`, interned
//!    into an *extension* of the plan's operator table).
//! 3. **Evaluate** — [`evaluate`] probes a candidate-keyed
//!    [`MatchIndex`](crate::engine::MatchIndex) with the labeled
//!    records and attributes every hit to every fired candidate via the
//!    per-key explain trace, yielding one coverage bitset per candidate.
//! 4. **Select** — [`select`] runs deterministic greedy marginal-F_β
//!    selection (exact exhaustive search below a small cutoff; stable
//!    tie-breaks; identical at any thread count).
//! 5. **Deploy** — the resulting [`Refinement`] carries the chosen
//!    rules *plus* the extended operator table/registry, and hot-swaps
//!    into a running
//!    [`MatchService::swap_rules_refined`](crate::service::MatchService::swap_rules_refined)
//!    or [`MatchServer`](crate::server::MatchServer) (also reachable
//!    over the wire via the `SubmitLabels`/`Refine` frames) with a
//!    [`RefinementReport`] of before/after quality, per-rule marginal
//!    gains and the chosen θ per swept atom.
//!
//! [`GroundTruth`]: matchrules_data::dirty::GroundTruth

mod evaluate;
mod labels;
mod pool;
mod select;

pub use evaluate::{evaluate, Coverage};
pub use labels::{LabelError, LabelStore, LabeledPair};
pub use pool::{CandidateOrigin, CandidatePool, CandidateRule};
pub use select::{select, Selection, SelectionConfig};

use crate::engine::MatchPlan;
use matchrules_core::dependency::MatchingDependency;
use matchrules_core::error::CoreError;
use matchrules_core::operators::OperatorTable;
use matchrules_core::relative_key::Target;
use matchrules_core::schema::Side;
use matchrules_data::eval::RuntimeOps;
use matchrules_data::relation::{Relation, Tuple};
use matchrules_data::value::Value;
use matchrules_matcher::discovery::{discover, DiscoveryConfig, DiscoveryError};
use matchrules_matcher::index::IndexError;
use matchrules_matcher::metrics::MatchQuality;
use matchrules_simdist::ops::OpRegistry;
use std::collections::HashMap;
use std::fmt;

/// Errors raised by the refinement loop.
#[derive(Debug)]
pub enum RefineError {
    /// The label store holds no pairs — there is nothing to select
    /// against.
    EmptyLabels,
    /// The candidate pool is empty.
    NoCandidates,
    /// Selection chose the empty set (no candidate has positive F_β on
    /// the labels, e.g. a label set without positives) — deploying no
    /// rules would stop matching entirely, so the refinement is refused.
    NothingSelected,
    /// The label store's schemas do not instantiate the pool's pair.
    SchemaMismatch {
        /// Which side mismatched.
        side: Side,
        /// Schema name the pool expects.
        expected: String,
        /// Schema name the labels carry.
        got: String,
    },
    /// A reasoning-core error (MD parsing/validation, operator
    /// resolution).
    Core(CoreError),
    /// Building or probing the evaluation index failed.
    Index(IndexError),
    /// The candidate miner rejected its configuration.
    Discovery(DiscoveryError),
}

impl fmt::Display for RefineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefineError::EmptyLabels => write!(f, "refinement needs at least one labeled pair"),
            RefineError::NoCandidates => write!(f, "refinement needs at least one candidate rule"),
            RefineError::NothingSelected => write!(
                f,
                "no candidate rule scores positively on the labels (are there positive pairs?); \
                 refusing to deploy an empty rule set"
            ),
            RefineError::SchemaMismatch { side, expected, got } => write!(
                f,
                "label store's {} schema {got} does not instantiate the pool schema {expected}",
                match side {
                    Side::Left => "left",
                    Side::Right => "right",
                }
            ),
            RefineError::Core(e) => write!(f, "{e}"),
            RefineError::Index(e) => write!(f, "{e}"),
            RefineError::Discovery(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RefineError {}

impl From<CoreError> for RefineError {
    fn from(e: CoreError) -> Self {
        RefineError::Core(e)
    }
}

impl From<IndexError> for RefineError {
    fn from(e: IndexError) -> Self {
        RefineError::Index(e)
    }
}

impl From<DiscoveryError> for RefineError {
    fn from(e: DiscoveryError) -> Self {
        RefineError::Discovery(e)
    }
}

/// Tuning knobs of a refinement run.
#[derive(Debug, Clone)]
pub struct RefineConfig {
    /// The β of the F_β selection objective (1.0 = F1).
    pub beta: f64,
    /// Candidate-count bound for exact exhaustive selection.
    pub exhaustive_cutoff: usize,
    /// θ grid every fuzzy atom is swept over (empty disables sweeping).
    pub thetas: Vec<f64>,
    /// Whether to mine additional candidates from the labeled sample.
    pub mine: bool,
    /// Confidence floor for mined candidates.
    pub min_confidence: f64,
    /// At most this many mined candidates join the pool (best first).
    pub max_mined: usize,
}

impl Default for RefineConfig {
    fn default() -> Self {
        RefineConfig {
            beta: 1.0,
            exhaustive_cutoff: 10,
            thetas: vec![0.70, 0.75, 0.85, 0.90],
            mine: true,
            min_confidence: 0.9,
            max_mined: 12,
        }
    }
}

/// One selected rule in the [`RefinementReport`].
#[derive(Debug, Clone)]
pub struct SelectedRule {
    /// Index into the candidate pool.
    pub pool_index: usize,
    /// The rule rendered with relation/attribute/operator names.
    pub rendered: String,
    /// Where the rule came from.
    pub origin: CandidateOrigin,
    /// `F_β(S) − F_β(S ∖ {rule})` on the labeled sample.
    pub marginal_gain: f64,
}

/// What a refinement run measured and chose.
#[derive(Debug, Clone)]
pub struct RefinementReport {
    /// Quality of the seed (serving) rules on the labeled sample.
    pub before: MatchQuality,
    /// Quality of the selected rules on the labeled sample.
    pub after: MatchQuality,
    /// The β the selection optimized.
    pub beta: f64,
    /// Number of candidates evaluated.
    pub pool_size: usize,
    /// Positive labels in the sample.
    pub labeled_positives: usize,
    /// Negative labels in the sample.
    pub labeled_negatives: usize,
    /// Whether exact exhaustive selection ran (vs greedy).
    pub exhaustive: bool,
    /// The selected rules with provenance and marginal gains.
    pub selected: Vec<SelectedRule>,
    /// Chosen θ per swept atom among the selected rules: the rendered
    /// atom (e.g. `credit[FN] ≈dl@0.70 billing[FN]`) and its threshold.
    pub chosen_thetas: Vec<(String, f64)>,
}

impl RefinementReport {
    /// How many selected rules are θ-sweep variants.
    pub fn theta_variants_selected(&self) -> usize {
        self.selected
            .iter()
            .filter(|r| matches!(r.origin, CandidateOrigin::ThetaSweep { .. }))
            .count()
    }
}

/// The deployable outcome of a refinement run: the selected rules
/// together with the operator world they were compiled against — an
/// *extension* of the serving plan's table, which
/// [`MatchService::swap_rules_refined`](crate::service::MatchService::swap_rules_refined)
/// and
/// [`MatchServer::swap_rules_refined`](crate::server::MatchServer::swap_rules_refined)
/// validate before swapping.
#[derive(Debug, Clone)]
pub struct Refinement {
    /// The selected rules (compiled against [`Refinement::ops`]).
    pub rules: Vec<MatchingDependency>,
    /// The extended operator table the rules' ids resolve against.
    pub ops: OperatorTable,
    /// The extended registry binding every symbol (θ aliases included).
    pub registry: OpRegistry,
    /// What was measured and chosen.
    pub report: RefinementReport,
}

impl Refinement {
    /// Whether this refinement's operator table extends `base`: every id
    /// of `base` names the same operator in both tables. This is what
    /// makes the refinement safe to hot-swap over a plan using `base` —
    /// existing rules, records and probes keep their meaning.
    pub fn extends(&self, base: &OperatorTable) -> bool {
        self.ops.len() >= base.len() && base.ids().all(|id| self.ops.name(id) == base.name(id))
    }
}

/// The refinement driver: owns a [`CandidatePool`] seeded from a serving
/// plan and turns a [`LabelStore`] into a deployable [`Refinement`].
#[derive(Debug, Clone)]
pub struct Refiner {
    pool: CandidatePool,
    target: Target,
    config: RefineConfig,
}

impl Refiner {
    /// A refiner seeded with `plan`'s rules, operator table and target,
    /// executing operators through `registry` (pass the serving engine's
    /// registry so custom operators keep their bindings).
    pub fn new(plan: &MatchPlan, registry: &OpRegistry) -> Self {
        let pool = CandidatePool::new(
            plan.pair().clone(),
            plan.ops().clone(),
            registry.clone(),
            plan.sigma(),
        );
        Refiner { pool, target: plan.target().clone(), config: RefineConfig::default() }
    }

    /// Replaces the configuration.
    #[must_use]
    pub fn with_config(mut self, config: RefineConfig) -> Self {
        self.config = config;
        self
    }

    /// The current configuration.
    pub fn config(&self) -> &RefineConfig {
        &self.config
    }

    /// Adds hand-written candidate MDs in the textual syntax; returns
    /// how many parsed rules were new to the pool.
    pub fn add_rule_text(&mut self, text: &str) -> Result<usize, RefineError> {
        self.pool.add_text(text)
    }

    /// Adds programmatic candidate MDs (built against the pool's
    /// operator table); returns how many were new.
    pub fn add_rules(&mut self, mds: impl IntoIterator<Item = MatchingDependency>) -> usize {
        self.pool.add_rules(mds)
    }

    /// The candidate pool as grown so far (before mining and sweeping,
    /// which happen per [`Refiner::refine`] run).
    pub fn pool(&self) -> &CandidatePool {
        &self.pool
    }

    /// Runs the full loop against `labels`: mine → θ-sweep → evaluate →
    /// select, returning the deployable [`Refinement`]. The run is
    /// read-only on `self`, so one refiner can serve successive label
    /// batches.
    pub fn refine(&self, labels: &LabelStore) -> Result<Refinement, RefineError> {
        if labels.is_empty() {
            return Err(RefineError::EmptyLabels);
        }
        let mut pool = self.pool.clone();

        if self.config.mine {
            let mined = mine_from_labels(&pool, &self.target, labels, &self.config)?;
            pool.add_discovered(&mined[..mined.len().min(self.config.max_mined)]);
        }
        if !self.config.thetas.is_empty() {
            pool.sweep_thetas(&self.config.thetas);
        }

        let coverage = evaluate(&pool, labels)?;
        let seed = pool.seed_indices();
        let selection = select(
            &coverage,
            &seed,
            &SelectionConfig {
                beta: self.config.beta,
                exhaustive_cutoff: self.config.exhaustive_cutoff,
            },
        );
        if selection.chosen.is_empty() {
            return Err(RefineError::NothingSelected);
        }

        let before = coverage.quality_of(&seed);
        let selected: Vec<SelectedRule> = selection
            .marginal_gains
            .iter()
            .map(|&(pool_index, marginal_gain)| SelectedRule {
                pool_index,
                rendered: pool.describe(pool_index),
                origin: pool.rules()[pool_index].origin.clone(),
                marginal_gain,
            })
            .collect();
        let mut chosen_thetas: Vec<(String, f64)> = Vec::new();
        for rule in &selected {
            if let CandidateOrigin::ThetaSweep { theta, .. } = rule.origin {
                let md = &pool.rules()[rule.pool_index].md;
                for atom in md.lhs() {
                    let name = pool.ops().name(atom.op);
                    if name.ends_with(&format!("@{theta:.2}")) {
                        let atom_str = pool.atom_label(atom);
                        if !chosen_thetas.iter().any(|(a, _)| *a == atom_str) {
                            chosen_thetas.push((atom_str, theta));
                        }
                    }
                }
            }
        }

        let report = RefinementReport {
            before,
            after: selection.quality,
            beta: self.config.beta,
            pool_size: pool.len(),
            labeled_positives: labels.positives(),
            labeled_negatives: labels.negatives(),
            exhaustive: selection.exhaustive,
            selected,
            chosen_thetas,
        };
        Ok(Refinement {
            rules: selection.chosen.iter().map(|&i| pool.rules()[i].md.clone()).collect(),
            ops: pool.ops().clone(),
            registry: pool.registry().clone(),
            report,
        })
    }
}

/// Mines candidate MDs from the labeled sample itself: the labeled pairs
/// are exactly the dense near-match sample the miner wants, and the
/// negatives keep its confidence estimates honest.
fn mine_from_labels(
    pool: &CandidatePool,
    target: &Target,
    labels: &LabelStore,
    config: &RefineConfig,
) -> Result<Vec<matchrules_matcher::discovery::DiscoveredMd>, RefineError> {
    let mut credit = Relation::new(pool.pair().left().clone());
    let mut billing = Relation::new(pool.pair().right().clone());
    let mut left_ids: HashMap<Vec<Value>, usize> = HashMap::new();
    let mut right_ids: HashMap<Vec<Value>, usize> = HashMap::new();
    let mut sample: Vec<(usize, usize)> = Vec::new();
    for pair in labels.pairs() {
        let lv = pair.left.values().to_vec();
        let next = left_ids.len();
        let li = *left_ids.entry(lv.clone()).or_insert_with(|| {
            credit.push(Tuple::new(next as u64, lv));
            next
        });
        let rv = pair.right.values().to_vec();
        let next = right_ids.len();
        let ri = *right_ids.entry(rv.clone()).or_insert_with(|| {
            billing.push(Tuple::new(next as u64, rv));
            next
        });
        sample.push((li, ri));
    }
    let attr_pairs: Vec<(usize, usize)> =
        target.y1().iter().zip(target.y2()).map(|(&l, &r)| (l, r)).collect();
    let runtime = RuntimeOps::resolve(pool.ops(), pool.registry())?;
    let cfg = DiscoveryConfig {
        min_support: (labels.positives() / 10).max(2),
        min_confidence: config.min_confidence,
        max_lhs: 2,
        lhs_ops: pool.op_ids(),
    };
    Ok(discover(&credit, &billing, &attr_pairs, &sample, &runtime, &cfg)?)
}
