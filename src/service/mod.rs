//! The serving layer: a stateful [`MatchService`] with record upsert,
//! versioned rule hot-swap, and per-pair match explanations.
//!
//! The [`engine`](crate::engine) compiles MDs into an immutable
//! [`MatchPlan`](crate::engine::MatchPlan) and executes it over batches;
//! this module turns that artifact into a **long-lived service**:
//!
//! * [`Record`] / [`RecordBuilder`] — the owned input type. Callers set
//!   fields by name against the service's schemas and never touch
//!   `Relation`s or `Tuple`s; unknown fields fail with a typed
//!   [`ServiceError`] naming the offender and suggesting the nearest
//!   schema attribute.
//! * [`MatchService`] — owns a record store with stable external
//!   [`RecordId`]s and an incrementally maintained
//!   [`MatchIndex`](crate::engine::MatchIndex).
//!   [`upsert`](MatchService::upsert) / [`remove`](MatchService::remove)
//!   / [`get`](MatchService::get) maintain it;
//!   [`query`](MatchService::query) answers point lookups with the
//!   matched ids, the RCK that fired, filter stats and the current
//!   [`RuleVersion`].
//! * [`swap_rules`](MatchService::swap_rules) — rule iteration without
//!   losing serving state: a new MD set is recompiled against the
//!   existing schema/operator world, the index is rebuilt off to the
//!   side, and both are swapped atomically; a failed swap leaves the old
//!   version serving.
//! * [`explain`](MatchService::explain) — a [`MatchExplanation`] for any
//!   (probe, record) pair: per-atom operator, θ-bound, computed
//!   distance, deciding pipeline stage and pass/fail, plus the MD
//!   deduction path that makes the fired RCK a key relative to the
//!   target.
//!
//! ```
//! use matchrules::engine::EngineBuilder;
//! use matchrules::core::schema::Schema;
//! use matchrules::service::{MatchService, RecordId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let people = Schema::text("people", &["name", "phone", "email"])?;
//! let engine = EngineBuilder::new()
//!     .dedup_schema(people)
//!     .md_text("people[email] = people[email] -> people[name,phone] <=> people[name,phone]")
//!     .target(&["name", "phone"], &["name", "phone"])
//!     .build()?;
//! let mut service = MatchService::new(engine);
//!
//! let ada = service.record_builder()
//!     .field("name", "Ada Lovelace")
//!     .field("phone", "020-7946-0001")
//!     .field("email", "ada@example.org")
//!     .build()?;
//! service.upsert(RecordId(1), &ada)?;
//!
//! let probe = service.probe_builder()
//!     .field("name", "A. Lovelace")
//!     .field("email", "ada@example.org")
//!     .build()?;
//! let response = service.query(&probe)?;
//! assert_eq!(response.hits.len(), 1);
//! assert_eq!(response.hits[0].id, RecordId(1));
//! let why = service.explain(&probe, RecordId(1))?;
//! assert!(why.matched);
//! # Ok(()) }
//! ```

mod explain;
mod match_service;
mod record;

pub use explain::{AtomExplanation, DeductionStep, KeyExplanation, MatchExplanation};
pub use match_service::{
    MatchService, QueryResponse, RankedResponse, RecordId, RuleVersion, ScoredHit, ServiceHit,
};
pub use record::{Record, RecordBuilder, ServiceError};
