//! [`Record`]: the owned, schema-checked input type of the serving
//! layer, and the typed [`ServiceError`]s it raises.
//!
//! Callers of a [`MatchService`](crate::service::MatchService) never
//! touch [`Relation`](matchrules_data::relation::Relation)s or
//! [`Tuple`](matchrules_data::relation::Tuple)s: they build `Record`s by
//! field *name* against a schema, and every name is validated — an
//! unknown field names the offending attribute **and** suggests the
//! nearest attribute of the schema (people typo `"lname"` as `"lnmae"`
//! far more often than they invent fields from thin air).

use crate::engine::EngineError;
use crate::service::match_service::RecordId;
use matchrules_core::schema::Schema;
use matchrules_data::relation::{Tuple, TupleId};
use matchrules_data::value::Value;
use matchrules_simdist::edit::levenshtein;
use std::fmt;
use std::sync::Arc;

/// Errors raised by the serving layer.
#[derive(Debug)]
pub enum ServiceError {
    /// A record field names no attribute of the schema it was built
    /// against; `suggestion` is the schema's nearest attribute name by
    /// edit distance.
    UnknownField {
        /// Name of the schema the record targets.
        schema: String,
        /// The offending field name.
        field: String,
        /// The schema attribute closest to `field` by edit distance.
        suggestion: Option<String>,
    },
    /// A value list does not have one value per schema attribute.
    ArityMismatch {
        /// Name of the schema the record targets.
        schema: String,
        /// The schema's arity.
        expected: usize,
        /// Number of values offered.
        got: usize,
    },
    /// A record built against one schema was handed to a service slot
    /// (store or probe side) expecting another.
    SchemaMismatch {
        /// Name/arity of the schema the service expects.
        expected: String,
        /// Name/arity of the schema the record carries.
        got: String,
    },
    /// No live record carries this id.
    UnknownRecord {
        /// The unresolved id.
        id: RecordId,
    },
    /// A rule-swap recompile or index rebuild failed; the service state
    /// is unchanged.
    Engine(EngineError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownField { schema, field, suggestion } => {
                write!(f, "record field {field:?} does not exist in schema {schema:?}")?;
                if let Some(s) = suggestion {
                    write!(f, " (did you mean {s:?}?)")?;
                }
                Ok(())
            }
            ServiceError::ArityMismatch { schema, expected, got } => {
                write!(f, "{got} values offered to schema {schema:?} of arity {expected}")
            }
            ServiceError::SchemaMismatch { expected, got } => {
                write!(f, "record schema {got} does not instantiate the service schema {expected}")
            }
            ServiceError::UnknownRecord { id } => {
                write!(f, "no live record carries id {id}")
            }
            ServiceError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<EngineError> for ServiceError {
    fn from(e: EngineError) -> Self {
        ServiceError::Engine(e)
    }
}

impl From<matchrules_matcher::index::IndexError> for ServiceError {
    fn from(e: matchrules_matcher::index::IndexError) -> Self {
        ServiceError::Engine(EngineError::Index(e))
    }
}

/// The schema attribute nearest to `field` by (plain) edit distance —
/// the suggestion an [`ServiceError::UnknownField`] carries. Ties break
/// toward schema order.
fn nearest_attribute(schema: &Schema, field: &str) -> Option<String> {
    schema
        .attributes()
        .iter()
        .map(|a| a.name())
        .min_by_key(|name| levenshtein(field, name))
        .map(str::to_owned)
}

/// An owned record: one value per attribute of the schema it was built
/// against (unset fields are `Null` — missing data, which matches
/// nothing). Built with a [`RecordBuilder`]; consumed by
/// [`MatchService`](crate::service::MatchService) upserts and queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    schema: Arc<Schema>,
    values: Vec<Value>,
}

impl Record {
    /// A builder over `schema`; set fields by name, then
    /// [`RecordBuilder::build`].
    pub fn builder(schema: Arc<Schema>) -> RecordBuilder {
        RecordBuilder { schema, fields: Vec::new() }
    }

    /// Builds a record from one value per schema attribute, in schema
    /// order — the bulk-ingestion path (CSV rows, existing tuples).
    pub fn from_values(schema: Arc<Schema>, values: Vec<Value>) -> Result<Record, ServiceError> {
        if values.len() != schema.arity() {
            return Err(ServiceError::ArityMismatch {
                schema: schema.name().to_owned(),
                expected: schema.arity(),
                got: values.len(),
            });
        }
        Ok(Record { schema, values })
    }

    /// The schema the record instantiates.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The values, in schema attribute order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The value of the named field; unknown names get the same typed
    /// error (with suggestion) as the builder.
    pub fn get(&self, field: &str) -> Result<&Value, ServiceError> {
        match self.schema.attr(field) {
            Ok(id) => Ok(&self.values[id]),
            Err(_) => Err(ServiceError::UnknownField {
                schema: self.schema.name().to_owned(),
                field: field.to_owned(),
                suggestion: nearest_attribute(&self.schema, field),
            }),
        }
    }

    /// The tuple form the engine layers consume.
    pub(crate) fn to_tuple(&self, id: TupleId) -> Tuple {
        Tuple::new(id, self.values.clone())
    }

    /// Reconstructs a record from a stored tuple.
    pub(crate) fn from_tuple(schema: Arc<Schema>, tuple: &Tuple) -> Record {
        Record { schema, values: tuple.values().to_vec() }
    }
}

/// Collects `field → value` assignments for one [`Record`]. Assignments
/// are validated (and unset attributes defaulted to `Null`) at
/// [`RecordBuilder::build`]; setting the same field twice keeps the last
/// value.
#[derive(Debug, Clone)]
pub struct RecordBuilder {
    schema: Arc<Schema>,
    fields: Vec<(String, Value)>,
}

impl RecordBuilder {
    /// Sets one field by name. `""` is a value like any other — use
    /// [`Value::Null`] (or leave the field unset) for missing data.
    #[must_use]
    pub fn field(mut self, name: &str, value: impl Into<Value>) -> Self {
        self.fields.push((name.to_owned(), value.into()));
        self
    }

    /// Validates every assignment and produces the record. The first
    /// unknown field fails with [`ServiceError::UnknownField`], naming
    /// the field and suggesting the schema's nearest attribute name.
    pub fn build(self) -> Result<Record, ServiceError> {
        let mut values = vec![Value::Null; self.schema.arity()];
        for (name, value) in self.fields {
            match self.schema.attr(&name) {
                Ok(id) => values[id] = value,
                Err(_) => {
                    return Err(ServiceError::UnknownField {
                        schema: self.schema.name().to_owned(),
                        field: name.clone(),
                        suggestion: nearest_attribute(&self.schema, &name),
                    })
                }
            }
        }
        Ok(Record { schema: self.schema, values })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Arc<Schema> {
        Arc::new(Schema::text("crm", &["first", "last", "mobile", "mail"]).unwrap())
    }

    #[test]
    fn builder_fills_unset_fields_with_null() {
        let rec = Record::builder(schema())
            .field("first", "Mark")
            .field("mail", "mc@gm.com")
            .build()
            .unwrap();
        assert_eq!(rec.get("first").unwrap(), &Value::str("Mark"));
        assert!(rec.get("last").unwrap().is_null());
        assert_eq!(rec.values().len(), 4);
    }

    #[test]
    fn unknown_field_suggests_nearest_attribute() {
        let err = Record::builder(schema()).field("lst", "Clifford").build().unwrap_err();
        match err {
            ServiceError::UnknownField { schema, field, suggestion } => {
                assert_eq!(schema, "crm");
                assert_eq!(field, "lst");
                assert_eq!(suggestion.as_deref(), Some("last"));
            }
            other => panic!("wrong error: {other:?}"),
        }
        let msg = Record::builder(schema()).field("emial", "x").build().unwrap_err().to_string();
        assert!(msg.contains("\"emial\""), "{msg}");
        assert!(msg.contains("did you mean \"mail\"?"), "{msg}");
    }

    #[test]
    fn get_reports_unknown_fields_the_same_way() {
        let rec = Record::builder(schema()).build().unwrap();
        let err = rec.get("mobil").unwrap_err();
        assert!(matches!(
            err,
            ServiceError::UnknownField { ref suggestion, .. } if suggestion.as_deref() == Some("mobile")
        ));
    }

    #[test]
    fn last_assignment_wins() {
        let rec = Record::builder(schema())
            .field("first", "Mark")
            .field("first", "Marx")
            .build()
            .unwrap();
        assert_eq!(rec.get("first").unwrap(), &Value::str("Marx"));
    }

    #[test]
    fn from_values_checks_arity() {
        let err = Record::from_values(schema(), vec![Value::str("x")]).unwrap_err();
        assert!(matches!(err, ServiceError::ArityMismatch { expected: 4, got: 1, .. }));
        let ok = Record::from_values(schema(), vec![Value::Null; 4]).unwrap();
        assert!(ok.values().iter().all(Value::is_null));
    }
}
