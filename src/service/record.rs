//! [`Record`]: the owned, schema-checked input type of the serving
//! layer, and the typed [`ServiceError`]s it raises.
//!
//! Callers of a [`MatchService`](crate::service::MatchService) never
//! touch [`Relation`](matchrules_data::relation::Relation)s or
//! [`Tuple`](matchrules_data::relation::Tuple)s: they build `Record`s by
//! field *name* against a schema, and every name is validated — an
//! unknown field names the offending attribute **and** suggests the
//! nearest attribute of the schema (people typo `"lname"` as `"lnmae"`
//! far more often than they invent fields from thin air).

use crate::engine::EngineError;
use crate::service::match_service::RecordId;
use matchrules_core::schema::Schema;
use matchrules_data::relation::{Tuple, TupleId};
use matchrules_data::value::Value;
use matchrules_simdist::edit::levenshtein;
use std::fmt;
use std::sync::Arc;

/// Errors raised by the serving layer.
#[derive(Debug)]
pub enum ServiceError {
    /// A record field names no attribute of the schema it was built
    /// against; `suggestion` is the schema's nearest attribute name by
    /// edit distance.
    UnknownField {
        /// Name of the schema the record targets.
        schema: String,
        /// The offending field name.
        field: String,
        /// The schema attribute closest to `field` by edit distance.
        suggestion: Option<String>,
    },
    /// A value list does not have one value per schema attribute.
    ArityMismatch {
        /// Name of the schema the record targets.
        schema: String,
        /// The schema's arity.
        expected: usize,
        /// Number of values offered.
        got: usize,
    },
    /// A record built against one schema was handed to a service slot
    /// (store or probe side) expecting another.
    SchemaMismatch {
        /// Name/arity of the schema the service expects.
        expected: String,
        /// Name/arity of the schema the record carries.
        got: String,
    },
    /// No live record carries this id.
    UnknownRecord {
        /// The unresolved id.
        id: RecordId,
    },
    /// A ranked query was given a NaN score threshold; NaN compares
    /// false to everything, so the caller's intent is ambiguous.
    InvalidThreshold,
    /// A rule-swap recompile or index rebuild failed; the service state
    /// is unchanged.
    Engine(EngineError),
    /// A refinement input was rejected (conflicting label, empty label
    /// set, incompatible operator table…); the serving state is
    /// unchanged.
    Refinement {
        /// Human-readable reason.
        message: String,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownField { schema, field, suggestion } => {
                write!(f, "record field {field:?} does not exist in schema {schema:?}")?;
                if let Some(s) = suggestion {
                    write!(f, " (did you mean {s:?}?)")?;
                }
                Ok(())
            }
            ServiceError::ArityMismatch { schema, expected, got } => {
                write!(f, "{got} values offered to schema {schema:?} of arity {expected}")
            }
            ServiceError::SchemaMismatch { expected, got } => {
                write!(f, "record schema {got} does not instantiate the service schema {expected}")
            }
            ServiceError::UnknownRecord { id } => {
                write!(f, "no live record carries id {id}")
            }
            ServiceError::InvalidThreshold => {
                write!(f, "ranked query min_score must not be NaN")
            }
            ServiceError::Engine(e) => write!(f, "{e}"),
            ServiceError::Refinement { message } => {
                write!(f, "refinement rejected: {message}")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<EngineError> for ServiceError {
    fn from(e: EngineError) -> Self {
        ServiceError::Engine(e)
    }
}

impl From<matchrules_matcher::index::IndexError> for ServiceError {
    fn from(e: matchrules_matcher::index::IndexError) -> Self {
        ServiceError::Engine(EngineError::Index(e))
    }
}

/// The schema attribute nearest to `field` by (plain) edit distance —
/// the suggestion an [`ServiceError::UnknownField`] carries. Ties break
/// toward schema order.
fn nearest_attribute(schema: &Schema, field: &str) -> Option<String> {
    schema
        .attributes()
        .iter()
        .map(|a| a.name())
        .min_by_key(|name| levenshtein(field, name))
        .map(str::to_owned)
}

/// An owned record: one value per attribute of the schema it was built
/// against (unset fields are `Null` — missing data, which matches
/// nothing). Built with a [`RecordBuilder`]; consumed by
/// [`MatchService`](crate::service::MatchService) upserts and queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    schema: Arc<Schema>,
    values: Vec<Value>,
}

impl Record {
    /// A builder over `schema`; set fields by name, then
    /// [`RecordBuilder::build`].
    pub fn builder(schema: Arc<Schema>) -> RecordBuilder {
        RecordBuilder { schema, fields: Vec::new() }
    }

    /// Builds a record from one value per schema attribute, in schema
    /// order — the bulk-ingestion path (CSV rows, existing tuples).
    pub fn from_values(schema: Arc<Schema>, values: Vec<Value>) -> Result<Record, ServiceError> {
        if values.len() != schema.arity() {
            return Err(ServiceError::ArityMismatch {
                schema: schema.name().to_owned(),
                expected: schema.arity(),
                got: values.len(),
            });
        }
        Ok(Record { schema, values })
    }

    /// The schema the record instantiates.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The values, in schema attribute order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// A stable 64-bit byte signature of the record: FNV-1a over the
    /// schema's name and arity plus every value in schema attribute
    /// order, each length-prefixed and tagged (`Null` is distinct from
    /// `""`). The signature is **order- and schema-deterministic** — it
    /// depends only on the schema identity and the value bytes, never on
    /// builder assignment order, process, platform or run — which makes
    /// it a sound cache key: two records with equal signatures built
    /// against one schema are equal with overwhelming probability, and
    /// equal records always have equal signatures.
    pub fn signature(&self) -> u64 {
        // FNV-1a, 64-bit: simple, stable across runs (unlike
        // `DefaultHasher`, whose output is unspecified between releases).
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= b as u64;
                hash = hash.wrapping_mul(PRIME);
            }
        };
        eat(self.schema.name().as_bytes());
        eat(&(self.schema.arity() as u64).to_le_bytes());
        for value in &self.values {
            match value.as_str() {
                // Tag + length prefix: `Null` ≠ `""`, and value
                // boundaries cannot shift (["ab","c"] ≠ ["a","bc"]).
                None => eat(&[0]),
                Some(s) => {
                    eat(&[1]);
                    eat(&(s.len() as u64).to_le_bytes());
                    eat(s.as_bytes());
                }
            }
        }
        hash
    }

    /// The value of the named field; unknown names get the same typed
    /// error (with suggestion) as the builder.
    pub fn get(&self, field: &str) -> Result<&Value, ServiceError> {
        match self.schema.attr(field) {
            Ok(id) => Ok(&self.values[id]),
            Err(_) => Err(ServiceError::UnknownField {
                schema: self.schema.name().to_owned(),
                field: field.to_owned(),
                suggestion: nearest_attribute(&self.schema, field),
            }),
        }
    }

    /// The tuple form the engine layers consume.
    pub(crate) fn to_tuple(&self, id: TupleId) -> Tuple {
        Tuple::new(id, self.values.clone())
    }

    /// Reconstructs a record from a stored tuple.
    pub(crate) fn from_tuple(schema: Arc<Schema>, tuple: &Tuple) -> Record {
        Record { schema, values: tuple.values().to_vec() }
    }
}

/// Collects `field → value` assignments for one [`Record`]. Assignments
/// are validated (and unset attributes defaulted to `Null`) at
/// [`RecordBuilder::build`]; setting the same field twice keeps the last
/// value.
#[derive(Debug, Clone)]
pub struct RecordBuilder {
    schema: Arc<Schema>,
    fields: Vec<(String, Value)>,
}

impl RecordBuilder {
    /// Sets one field by name. `""` is a value like any other — use
    /// [`Value::Null`] (or leave the field unset) for missing data.
    #[must_use]
    pub fn field(mut self, name: &str, value: impl Into<Value>) -> Self {
        self.fields.push((name.to_owned(), value.into()));
        self
    }

    /// Validates every assignment and produces the record. The first
    /// unknown field fails with [`ServiceError::UnknownField`], naming
    /// the field and suggesting the schema's nearest attribute name.
    pub fn build(self) -> Result<Record, ServiceError> {
        let mut values = vec![Value::Null; self.schema.arity()];
        for (name, value) in self.fields {
            match self.schema.attr(&name) {
                Ok(id) => values[id] = value,
                Err(_) => {
                    return Err(ServiceError::UnknownField {
                        schema: self.schema.name().to_owned(),
                        field: name.clone(),
                        suggestion: nearest_attribute(&self.schema, &name),
                    })
                }
            }
        }
        Ok(Record { schema: self.schema, values })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Arc<Schema> {
        Arc::new(Schema::text("crm", &["first", "last", "mobile", "mail"]).unwrap())
    }

    #[test]
    fn builder_fills_unset_fields_with_null() {
        let rec = Record::builder(schema())
            .field("first", "Mark")
            .field("mail", "mc@gm.com")
            .build()
            .unwrap();
        assert_eq!(rec.get("first").unwrap(), &Value::str("Mark"));
        assert!(rec.get("last").unwrap().is_null());
        assert_eq!(rec.values().len(), 4);
    }

    #[test]
    fn unknown_field_suggests_nearest_attribute() {
        let err = Record::builder(schema()).field("lst", "Clifford").build().unwrap_err();
        match err {
            ServiceError::UnknownField { schema, field, suggestion } => {
                assert_eq!(schema, "crm");
                assert_eq!(field, "lst");
                assert_eq!(suggestion.as_deref(), Some("last"));
            }
            other => panic!("wrong error: {other:?}"),
        }
        let msg = Record::builder(schema()).field("emial", "x").build().unwrap_err().to_string();
        assert!(msg.contains("\"emial\""), "{msg}");
        assert!(msg.contains("did you mean \"mail\"?"), "{msg}");
    }

    #[test]
    fn get_reports_unknown_fields_the_same_way() {
        let rec = Record::builder(schema()).build().unwrap();
        let err = rec.get("mobil").unwrap_err();
        assert!(matches!(
            err,
            ServiceError::UnknownField { ref suggestion, .. } if suggestion.as_deref() == Some("mobile")
        ));
    }

    #[test]
    fn last_assignment_wins() {
        let rec = Record::builder(schema())
            .field("first", "Mark")
            .field("first", "Marx")
            .build()
            .unwrap();
        assert_eq!(rec.get("first").unwrap(), &Value::str("Marx"));
    }

    #[test]
    fn signature_is_deterministic_and_ignores_assignment_order() {
        let a = Record::builder(schema())
            .field("first", "Mark")
            .field("mail", "mc@gm.com")
            .build()
            .unwrap();
        let b = Record::builder(schema())
            .field("mail", "mc@gm.com")
            .field("first", "Mark")
            .build()
            .unwrap();
        assert_eq!(a.signature(), b.signature(), "assignment order must not matter");
        assert_eq!(a.signature(), a.clone().signature(), "same record, same signature");
        // Pinned value: the signature is stable across runs and
        // platforms — a silent change would invalidate persisted caches.
        let empty = Record::builder(schema()).build().unwrap();
        assert_eq!(empty.signature(), 0x5d67_37ba_8b45_f7c3);
    }

    #[test]
    fn signature_separates_values_null_and_schema() {
        let base = Record::builder(schema()).field("first", "Mark").build().unwrap();
        let other = Record::builder(schema()).field("first", "Marx").build().unwrap();
        assert_ne!(base.signature(), other.signature());
        // Null and "" are different records.
        let null_last = Record::builder(schema()).field("first", "Mark").build().unwrap();
        let empty_last =
            Record::builder(schema()).field("first", "Mark").field("last", "").build().unwrap();
        assert_ne!(null_last.signature(), empty_last.signature());
        // Boundary shifts cannot collide: ["ab", "c"] vs ["a", "bc"].
        let ab_c =
            Record::builder(schema()).field("first", "ab").field("last", "c").build().unwrap();
        let a_bc =
            Record::builder(schema()).field("first", "a").field("last", "bc").build().unwrap();
        assert_ne!(ab_c.signature(), a_bc.signature());
        // Same values under another schema sign differently.
        let alt = Arc::new(Schema::text("mdm", &["first", "last", "mobile", "mail"]).unwrap());
        let same_values = Record::from_values(alt, base.values().to_vec()).unwrap();
        assert_ne!(base.signature(), same_values.signature());
    }

    #[test]
    fn from_values_checks_arity() {
        let err = Record::from_values(schema(), vec![Value::str("x")]).unwrap_err();
        assert!(matches!(err, ServiceError::ArityMismatch { expected: 4, got: 1, .. }));
        let ok = Record::from_values(schema(), vec![Value::Null; 4]).unwrap();
        assert!(ok.values().iter().all(Value::is_null));
    }
}
