//! [`MatchService`]: the long-lived, stateful front door of the engine.

use crate::engine::{
    schemas_compatible, EngineBuilder, FilterStats, IndexStats, MatchEngine, MatchIndex, MatchPlan,
};
use crate::service::explain::MatchExplanation;
use crate::service::record::{Record, RecordBuilder, ServiceError};
use matchrules_core::dependency::MatchingDependency;
use matchrules_core::schema::Schema;
use matchrules_data::relation::Relation;
use std::fmt;
use std::sync::Arc;

/// Stable external identifier of a stored record. Ids are chosen by the
/// caller, never recycled by the service, and survive rule hot-swaps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordId(pub u64);

impl fmt::Display for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Monotone version of the service's rule set: `v1` at construction,
/// bumped by every successful [`MatchService::swap_rules`]. Stamped on
/// every [`QueryResponse`] and [`MatchExplanation`] so callers can tell
/// which rules produced an answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RuleVersion(pub(crate) u64);

impl RuleVersion {
    /// The version number (1-based).
    pub fn number(self) -> u64 {
        self.0
    }
}

impl fmt::Display for RuleVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// One query hit: a stored record the probe matches, and the RCK that
/// fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceHit {
    /// Id of the matched record.
    pub id: RecordId,
    /// Index (into [`MatchPlan::rcks`]) of the first key that accepted
    /// the pair — render it with
    /// `plan.rcks()[key].display(plan.pair(), plan.ops())`.
    pub key: usize,
}

/// One ranked query hit: a stored record the probe matches, the RCK
/// that fired, and the calibrated match confidence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredHit {
    /// Id of the matched record.
    pub id: RecordId,
    /// Index (into [`MatchPlan::rcks`]) of the first key that accepted
    /// the pair.
    pub key: usize,
    /// Calibrated match confidence in `[0, 1]` — the plan's
    /// [`ScoreModel`](crate::engine::ScoreModel) posterior for the
    /// (probe, record) pair. Never NaN.
    pub score: f64,
}

/// The stamped answer of one [`MatchService::query_ranked`].
#[derive(Debug, Clone, PartialEq)]
pub struct RankedResponse {
    /// The surviving hits, sorted by score descending (ties keep store
    /// order), truncated to the requested `top_k`.
    pub hits: Vec<ScoredHit>,
    /// Candidate records the index retrieved and verified for this
    /// probe (deduplicated across RCKs).
    pub candidates: usize,
    /// Key evaluations the verification ran.
    pub key_evals: usize,
    /// The rule version that produced this answer.
    pub version: RuleVersion,
}

/// The stamped answer of one [`MatchService::query`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryResponse {
    /// The matched records, in stored (slot) order.
    pub hits: Vec<ServiceHit>,
    /// Candidate records the index retrieved and verified for this probe
    /// (deduplicated across RCKs).
    pub candidates: usize,
    /// Key evaluations the verification ran — per candidate, only the
    /// RCKs whose retrieval produced it are tried.
    pub key_evals: usize,
    /// Filter-effectiveness counters of the verification pass.
    pub stats: FilterStats,
    /// The rule version that produced this answer.
    pub version: RuleVersion,
}

/// A stateful record-matching service over one compiled
/// [`MatchEngine`]: a record store with stable external [`RecordId`]s,
/// an incrementally maintained [`MatchIndex`], versioned rule hot-swap
/// and per-pair match explanations.
///
/// * **Store** — [`MatchService::upsert`] / [`MatchService::remove`] /
///   [`MatchService::get`] maintain records of the plan's *right* schema
///   (for a dedup/reflexive plan, the only schema); every record is
///   immediately visible to queries.
/// * **Query** — [`MatchService::query`] takes a probe [`Record`] of the
///   plan's *left* schema and returns exactly the hits a batch
///   [`MatchEngine::match_pairs_indexed`] run over the equivalent
///   relation would report for that probe: matched id, the RCK that
///   fired, filter stats, and the current [`RuleVersion`].
/// * **Rule hot-swap** — [`MatchService::swap_rules`] recompiles a new
///   MD set against the existing schema/operator world, rebuilds the
///   index off to the side, then swaps atomically; the store survives,
///   the version bumps. A failed swap leaves the service unchanged.
/// * **Explanation** — [`MatchService::explain`] traces one
///   (probe, record) pair: per-atom operator, θ-bound, computed distance
///   and pass/fail, plus the MD deduction path that makes the fired RCK
///   a key at all.
///
/// See the crate-level quickstart for an end-to-end example.
pub struct MatchService {
    engine: MatchEngine,
    index: MatchIndex,
    version: RuleVersion,
}

impl fmt::Debug for MatchService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MatchService")
            .field("version", &self.version)
            .field("records", &self.index.len())
            .field("rcks", &self.engine.plan().rcks().len())
            .finish()
    }
}

impl MatchService {
    /// A service over `engine`'s compiled plan, with an empty store at
    /// rule version `v1`.
    pub fn new(engine: MatchEngine) -> MatchService {
        let empty = Relation::new(engine.plan().pair().right().clone());
        let index = engine.index(&empty).expect("an empty relation has no duplicate ids");
        MatchService { engine, index, version: RuleVersion(1) }
    }

    /// The engine executing the current rule version.
    pub fn engine(&self) -> &MatchEngine {
        &self.engine
    }

    /// The currently compiled plan.
    pub fn plan(&self) -> &MatchPlan {
        self.engine.plan()
    }

    /// The operator registry the serving engine executes against —
    /// what a [`Refiner`](crate::refine::Refiner) seeds from so custom
    /// and θ-alias operators keep their bindings.
    pub fn registry(&self) -> &crate::simdist::ops::OpRegistry {
        self.engine.registry()
    }

    /// The current rule version.
    pub fn version(&self) -> RuleVersion {
        self.version
    }

    /// The schema stored records instantiate (the plan's right side).
    pub fn store_schema(&self) -> &Arc<Schema> {
        self.plan().pair().right()
    }

    /// The schema probe records instantiate (the plan's left side; equal
    /// to [`MatchService::store_schema`] for reflexive plans).
    pub fn probe_schema(&self) -> &Arc<Schema> {
        self.plan().pair().left()
    }

    /// A [`RecordBuilder`] over the store schema.
    pub fn record_builder(&self) -> RecordBuilder {
        Record::builder(self.store_schema().clone())
    }

    /// A [`RecordBuilder`] over the probe schema.
    pub fn probe_builder(&self) -> RecordBuilder {
        Record::builder(self.probe_schema().clone())
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Whether a live record carries `id`.
    pub fn contains(&self, id: RecordId) -> bool {
        self.index.contains(id.0)
    }

    /// Shape counters of the backing index (anchors, buckets, live
    /// records, tombstones).
    pub fn stats(&self) -> IndexStats {
        self.index.stats()
    }

    fn check_schema(record: &Record, expected: &Arc<Schema>) -> Result<(), ServiceError> {
        if Arc::ptr_eq(record.schema(), expected) || schemas_compatible(record.schema(), expected) {
            Ok(())
        } else {
            Err(ServiceError::SchemaMismatch {
                expected: format!("{}/{}", expected.name(), expected.arity()),
                got: format!("{}/{}", record.schema().name(), record.schema().arity()),
            })
        }
    }

    /// Inserts `record` under `id`, or replaces the record previously
    /// stored under `id`; returns whether a replacement happened. The
    /// record is immediately visible to queries. A replaced record
    /// re-enters at the freshest store position (hits are reported in
    /// store order).
    pub fn upsert(&mut self, id: RecordId, record: &Record) -> Result<bool, ServiceError> {
        Self::check_schema(record, self.store_schema())?;
        let replaced = self.index.contains(id.0);
        if replaced {
            self.index.remove(id.0)?;
        }
        self.index.insert(record.to_tuple(id.0))?;
        Ok(replaced)
    }

    /// Removes the record stored under `id` from query visibility.
    pub fn remove(&mut self, id: RecordId) -> Result<(), ServiceError> {
        self.index.remove(id.0).map_err(|_| ServiceError::UnknownRecord { id })
    }

    /// The live record stored under `id`.
    pub fn get(&self, id: RecordId) -> Option<Record> {
        self.index.get(id.0).map(|t| Record::from_tuple(self.store_schema().clone(), t))
    }

    /// Every live record the probe matches (some RCK accepts, no
    /// negative rule vetoes), with the key that fired — exactly the hits
    /// a batch [`MatchEngine::match_pairs_indexed`] run over
    /// [`MatchService::snapshot`] would report for this probe — stamped
    /// with the current rule version.
    pub fn query(&self, probe: &Record) -> Result<QueryResponse, ServiceError> {
        Self::check_schema(probe, self.probe_schema())?;
        let outcome = self.index.query(&probe.to_tuple(0));
        Ok(QueryResponse {
            hits: outcome
                .hits
                .iter()
                .map(|h| ServiceHit { id: RecordId(h.id), key: h.key })
                .collect(),
            candidates: outcome.candidates,
            key_evals: outcome.key_evals,
            stats: outcome.stats,
            version: self.version,
        })
    }

    /// Queries a batch of probes in one call, sharing signature
    /// extraction and scratch across the batch. Responses are
    /// byte-identical — hits, counters, version — to calling
    /// [`MatchService::query`] once per probe, at a fraction of the
    /// per-probe overhead; one malformed probe fails the whole batch
    /// before any work runs.
    pub fn query_batch(&self, probes: &[Record]) -> Result<Vec<QueryResponse>, ServiceError> {
        for probe in probes {
            Self::check_schema(probe, self.probe_schema())?;
        }
        let tuples: Vec<_> = probes.iter().map(|p| p.to_tuple(0)).collect();
        Ok(self
            .index
            .query_batch(&tuples)
            .into_iter()
            .map(|outcome| QueryResponse {
                hits: outcome
                    .hits
                    .iter()
                    .map(|h| ServiceHit { id: RecordId(h.id), key: h.key })
                    .collect(),
                candidates: outcome.candidates,
                key_evals: outcome.key_evals,
                stats: outcome.stats,
                version: self.version,
            })
            .collect())
    }

    /// [`MatchService::query`], ranked: the **same hit set** the boolean
    /// query reports (the rules stay the sound candidate generator;
    /// scores never add or drop a hit), each hit scored by the plan's
    /// compiled [`ScoreModel`](crate::engine::ScoreModel), sorted by
    /// score descending (ties keep store order), filtered to
    /// `score >= min_score`, and truncated to the best `top_k`.
    ///
    /// `min_score` must not be NaN
    /// ([`ServiceError::InvalidThreshold`]); `min_score <= 0.0` with
    /// `top_k >= hits` returns the full boolean hit set. Scores are
    /// deterministic — byte-identical across thread counts and repeat
    /// queries at the same rule version.
    pub fn query_ranked(
        &self,
        probe: &Record,
        top_k: usize,
        min_score: f64,
    ) -> Result<RankedResponse, ServiceError> {
        if min_score.is_nan() {
            return Err(ServiceError::InvalidThreshold);
        }
        Self::check_schema(probe, self.probe_schema())?;
        let probe_tuple = probe.to_tuple(0);
        let outcome = self.index.query(&probe_tuple);
        let model = self.plan().score_model();
        let runtime = self.engine.runtime();
        let mut hits: Vec<ScoredHit> = outcome
            .hits
            .iter()
            .map(|h| {
                let stored = self.index.get(h.id).expect("query hits are live records");
                let score = model.score(runtime, &probe_tuple, stored);
                ScoredHit { id: RecordId(h.id), key: h.key, score }
            })
            .collect();
        // Stable sort: equal scores keep the boolean query's store order.
        hits.sort_by(|a, b| b.score.total_cmp(&a.score));
        hits.retain(|h| h.score >= min_score);
        hits.truncate(top_k);
        Ok(RankedResponse {
            hits,
            candidates: outcome.candidates,
            key_evals: outcome.key_evals,
            version: self.version,
        })
    }

    /// Explains the decision for `(probe, stored record id)`: every
    /// key's every atom (operator, deciding stage, θ-bound, exact edit
    /// distance, pass/fail), the veto outcome, and — when a key fired —
    /// the MD deduction path that makes that key a key. Decisions agree
    /// exactly with [`MatchService::query`].
    pub fn explain(&self, probe: &Record, id: RecordId) -> Result<MatchExplanation, ServiceError> {
        Self::check_schema(probe, self.probe_schema())?;
        let trace = self
            .index
            .explain(&probe.to_tuple(0), id.0)
            .map_err(|_| ServiceError::UnknownRecord { id })?;
        Ok(MatchExplanation::from_trace(trace, id, self.plan(), self.version))
    }

    /// The live store as a relation (records in store order, ids as
    /// tuple ids) — what batch runs and equivalence tests consume.
    pub fn snapshot(&self) -> Relation {
        self.index.live_relation()
    }

    /// Replaces the rule set with MDs parsed from `md_text` (the
    /// [`crate::core::parser`] syntax, against the existing schema pair
    /// and operator table): recompiles the plan, rebuilds the index over
    /// the surviving store off to the side, then swaps both atomically
    /// and returns the bumped [`RuleVersion`]. On error (parse, compile,
    /// resolution) the service keeps serving the old version untouched.
    pub fn swap_rules(&mut self, md_text: &str) -> Result<RuleVersion, ServiceError> {
        let text = md_text.to_owned();
        self.swap_with(move |b| b.md_text(&text))
    }

    /// [`MatchService::swap_rules`] for programmatic MDs. Attribute
    /// pairs are revalidated against the schema pair at compile, but the
    /// atoms' `OperatorId`s are only meaningful against **this plan's**
    /// operator table ([`MatchPlan::ops`]) — pass MDs taken from
    /// [`MatchPlan::sigma`] or built against that table, not ones
    /// interned into a foreign table (out-of-range ids fail the compile;
    /// in-range foreign ids would rebind to whatever operator happens to
    /// hold that id here).
    pub fn swap_rules_with(
        &mut self,
        mds: Vec<MatchingDependency>,
    ) -> Result<RuleVersion, ServiceError> {
        self.swap_with(move |b| b.mds(mds))
    }

    /// Deploys a [`Refinement`](crate::refine::Refinement): swaps in its
    /// selected rules together with the extended operator table and
    /// registry they were compiled against (θ-sweep aliases included).
    /// The refinement's table must *extend* this service's — every
    /// existing `OperatorId` keeps its meaning — otherwise the swap is
    /// refused with [`ServiceError::Refinement`] and the service keeps
    /// serving untouched.
    pub fn swap_rules_refined(
        &mut self,
        refinement: &crate::refine::Refinement,
    ) -> Result<RuleVersion, ServiceError> {
        if !refinement.extends(self.engine.plan().ops()) {
            return Err(ServiceError::Refinement {
                message: "refinement's operator table does not extend the serving plan's \
                          (was it produced against a different service?)"
                    .to_owned(),
            });
        }
        if refinement.rules.is_empty() {
            return Err(ServiceError::Refinement {
                message: "refinement selected no rules; refusing to deploy an empty rule set"
                    .to_owned(),
            });
        }
        let ops = refinement.ops.clone();
        let rules = refinement.rules.clone();
        self.swap_with_registry(refinement.registry.clone(), move |b| {
            b.operator_table(ops).mds(rules)
        })
    }

    fn swap_with(
        &mut self,
        add_rules: impl FnOnce(EngineBuilder) -> EngineBuilder,
    ) -> Result<RuleVersion, ServiceError> {
        self.swap_with_registry(self.engine.registry().clone(), add_rules)
    }

    /// [`MatchService::swap_with`] with an explicit registry — the new
    /// engine compiles *and runs* against `registry`, which is how a
    /// refined swap carries its θ-alias bindings into the serving
    /// runtime (not just its table).
    fn swap_with_registry(
        &mut self,
        registry: crate::simdist::ops::OpRegistry,
        add_rules: impl FnOnce(EngineBuilder) -> EngineBuilder,
    ) -> Result<RuleVersion, ServiceError> {
        // Compile and rebuild entirely off to the side; `self` is only
        // touched once everything succeeded.
        let builder = EngineBuilder::from_plan(self.engine.plan()).operators(registry.clone());
        let plan = add_rules(builder).compile()?;
        let engine = MatchEngine::from_plan(plan, &registry)?;
        // The new version plans its atom intersections around the
        // selectivities the old version observed in live traffic.
        let index = engine
            .index_planned(&self.index.live_relation(), &self.index.observed_selectivity())?;
        self.engine = engine;
        self.index = index;
        self.version = RuleVersion(self.version.0 + 1);
        Ok(self.version)
    }

    /// Rebuilds the index over the live store under the *current* rules,
    /// reclaiming tombstoned slots left by removals and upserts — and
    /// folding the selectivities observed so far into the rebuilt
    /// index's plans. Query answers are unchanged; the rule version does
    /// not move.
    pub fn compact(&mut self) -> Result<(), ServiceError> {
        self.index = self
            .engine
            .index_planned(&self.index.live_relation(), &self.index.observed_selectivity())?;
        Ok(())
    }
}
