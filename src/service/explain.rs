//! [`MatchExplanation`]: *why* a (probe, record) pair matched — or
//! didn't.
//!
//! An explanation has two halves, mirroring the paper's split between
//! reasoning and matching:
//!
//! * the **evaluation trace** — per key, per atom: which operator
//!   compared which attributes, the θ-derived edit bound, the exact edit
//!   distance computed, which pipeline stage decided, and pass/fail —
//!   threaded up from the compiled kernel path
//!   ([`AtomTrace`](crate::engine::AtomTrace)), so the explanation
//!   describes the *actual* decision procedure, not a re-implementation
//!   of it;
//! * the **deduction path** — for the key that fired, the given MDs of Σ
//!   that MDClosure applies (in firing order) to deduce that the key
//!   identifies the target at all
//!   ([`deduction_path`](matchrules_core::deduction::deduction_path)).

use crate::engine::{AtomStage, MatchPlan, PairTrace};
use crate::service::match_service::{RecordId, RuleVersion};
use matchrules_core::deduction::deduction_path;
use std::fmt;

/// One atom of one key, as evaluated on the explained pair.
#[derive(Debug, Clone, PartialEq)]
pub struct AtomExplanation {
    /// Name of the compared attribute on the probe (left) side.
    pub left: String,
    /// Name of the compared attribute on the stored (right) side.
    pub right: String,
    /// The operator's symbolic name (`"="`, `"≈d"`, …).
    pub op: String,
    /// Whether the atom held.
    pub passed: bool,
    /// Which stage of the compiled pipeline decided it.
    pub stage: AtomStage,
    /// The θ-derived edit bound (edit operators only).
    pub bound: Option<usize>,
    /// The exact edit distance of the pair (edit operators only).
    pub distance: Option<usize>,
}

impl fmt::Display for AtomExplanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {}: {}",
            self.left,
            self.op,
            self.right,
            if self.passed { "pass" } else { "fail" },
        )?;
        match (self.distance, self.bound) {
            (Some(d), Some(b)) => {
                write!(
                    f,
                    " (dist {d} {} bound {b}, via {})",
                    if d <= b { "≤" } else { ">" },
                    self.stage.name()
                )
            }
            _ => write!(f, " (via {})", self.stage.name()),
        }
    }
}

/// One key of the plan, as evaluated on the explained pair.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyExplanation {
    /// Index into [`MatchPlan::rcks`].
    pub key: usize,
    /// The key in the paper's `(X1, X2 ‖ C)` notation.
    pub rendered: String,
    /// The key's cost under the plan's final cost-model state (see
    /// [`MatchPlan::rck_costs`](crate::engine::MatchPlan::rck_costs)).
    pub cost: f64,
    /// Whether every atom held (the key accepted the pair).
    pub matched: bool,
    /// Per-atom outcomes, in the key's canonical atom order.
    pub atoms: Vec<AtomExplanation>,
}

/// One step of the deduction path: a given MD of Σ that fired during
/// MDClosure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeductionStep {
    /// Index into [`MatchPlan::sigma`].
    pub md: usize,
    /// The MD in the parser's textual syntax.
    pub rendered: String,
}

/// The full explanation of one `(probe, stored record)` decision at one
/// rule version. Produced by
/// [`MatchService::explain`](crate::service::MatchService::explain);
/// `Display` renders a multi-line human-readable trace.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchExplanation {
    /// Id of the explained stored record.
    pub id: RecordId,
    /// The final decision: some key accepted and no negative rule
    /// vetoed — exactly when a query for the probe returns `id`.
    pub matched: bool,
    /// The first key that accepted the pair (the key a query hit
    /// reports), independent of vetoes.
    pub fired_key: Option<usize>,
    /// Whether a §8 negative rule vetoes the pair.
    pub vetoed: bool,
    /// The rule version the explanation was computed under.
    pub version: RuleVersion,
    /// Every key's evaluation, in plan order.
    pub keys: Vec<KeyExplanation>,
    /// For the fired key: the given MDs (first-firing order,
    /// deduplicated) whose closure makes it a key relative to the
    /// target. Empty when no key fired or the key is not deducible from
    /// Σ (hand-pinned key lists).
    pub deduction: Vec<DeductionStep>,
}

impl MatchExplanation {
    pub(crate) fn from_trace(
        trace: PairTrace,
        id: RecordId,
        plan: &MatchPlan,
        version: RuleVersion,
    ) -> MatchExplanation {
        let pair = plan.pair();
        let ops = plan.ops();
        let keys: Vec<KeyExplanation> = trace
            .keys
            .iter()
            .map(|kt| {
                let key = &plan.rcks()[kt.key];
                KeyExplanation {
                    key: kt.key,
                    rendered: key.display(pair, ops).to_string(),
                    cost: plan.rck_costs().get(kt.key).copied().unwrap_or(f64::NAN),
                    matched: kt.matched,
                    atoms: kt
                        .atoms
                        .iter()
                        .map(|(atom, t)| AtomExplanation {
                            left: pair.left().attr_name(atom.left).to_owned(),
                            right: pair.right().attr_name(atom.right).to_owned(),
                            op: ops.name(atom.op).to_owned(),
                            passed: t.matched,
                            stage: t.stage,
                            bound: t.bound,
                            distance: t.distance,
                        })
                        .collect(),
                }
            })
            .collect();
        let deduction = trace
            .matched_key
            .and_then(|k| {
                let md = plan.rcks()[k].to_md(plan.target());
                deduction_path(plan.sigma(), &md)
            })
            .map(|path| {
                // The closure trace lists one firing per normalized rule;
                // keep each source MD's first firing.
                let mut seen = vec![false; plan.sigma().len()];
                path.into_iter()
                    .filter(|&i| !std::mem::replace(&mut seen[i], true))
                    .map(|i| DeductionStep {
                        md: i,
                        rendered: plan.sigma()[i].display(pair, ops).to_string(),
                    })
                    .collect()
            })
            .unwrap_or_default();
        MatchExplanation {
            id,
            matched: trace.matched(),
            fired_key: trace.matched_key,
            vetoed: trace.vetoed,
            version,
            keys,
            deduction,
        }
    }
}

impl fmt::Display for MatchExplanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "record {} ({}): ", self.id, self.version)?;
        match (self.fired_key, self.vetoed) {
            (Some(k), false) => writeln!(f, "MATCH via key {k}")?,
            (Some(k), true) => {
                writeln!(f, "NO MATCH — key {k} accepted but a negative rule vetoes")?
            }
            (None, _) => writeln!(f, "NO MATCH — no key accepted")?,
        }
        for key in &self.keys {
            writeln!(
                f,
                "  key {} [cost {:.2}] {}: {}",
                key.key,
                key.cost,
                key.rendered,
                if key.matched { "accepted" } else { "rejected" },
            )?;
            for atom in &key.atoms {
                writeln!(f, "    {atom}")?;
            }
        }
        if !self.deduction.is_empty() {
            writeln!(f, "  key deduced from Σ by firing:")?;
            for step in &self.deduction {
                writeln!(f, "    ϕ{}: {}", step.md, step.rendered)?;
            }
        }
        Ok(())
    }
}
