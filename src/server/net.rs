//! The TCP front: a thin `std::net` server loop over the [`wire`]
//! protocol, and [`MatchClient`], the matching blocking client.
//!
//! [`serve`] binds a [`std::net::TcpListener`] and runs an accept loop
//! on a background thread, handling each connection on its own worker
//! thread (capped — further connections queue in the OS backlog until a
//! worker frees up). Workers poll with short read timeouts so a
//! [`ServerHandle::shutdown`] stops the acceptor *and* every idle
//! worker promptly; in-flight requests finish first.
//!
//! The front owns no matching state: every request is decoded, applied
//! to the shared [`MatchServer`], and the answer encoded back. Service
//! failures (schema mismatch, unknown record, a rule set that fails to
//! compile) travel as [`Response::Error`] and leave the connection
//! usable; protocol failures (garbage bytes, oversized frames) answer
//! with an error frame and close the connection, whose framing state is
//! unknown.
//!
//! [`wire`]: crate::server::wire

use crate::server::core::MatchServer;
use crate::server::wire::{
    read_response, write_request, write_response, ProtocolError, Request, Response, WireHit,
    WireQuery, WireRanked, WireRefinement, WireSchema, WireScoredHit, WireStats, MAX_FRAME,
};
use crate::service::{QueryResponse, RankedResponse, Record, RecordId, ServiceError};
use matchrules_core::schema::Schema;
use matchrules_data::value::Value;
use std::fmt;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// How long a worker blocks on a read before re-checking the shutdown
/// flag.
const POLL: Duration = Duration::from_millis(25);

// ---------------------------------------------------------------------
// Server side
// ---------------------------------------------------------------------

/// A running TCP front over a [`MatchServer`], from [`serve`]. Dropping
/// the handle shuts the front down (the [`MatchServer`] itself is
/// untouched — it is shared state, not owned by the front).
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals the acceptor and every worker to stop, and joins them.
    /// In-flight requests finish; idle connections close within one
    /// poll interval.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Wake the acceptor out of its blocking accept.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Serves `server` over TCP on `addr` (`"127.0.0.1:0"` picks a free
/// port; read it back from [`ServerHandle::addr`]). The connection-
/// worker cap defaults to `max(4, 2 × server.threads())` — see
/// [`serve_with`] to pick it explicitly.
pub fn serve(server: Arc<MatchServer>, addr: impl ToSocketAddrs) -> io::Result<ServerHandle> {
    let cap = server.threads().saturating_mul(2).max(4);
    serve_with(server, addr, cap)
}

/// [`serve`] with an explicit cap on concurrently handled connections.
/// Further connections are accepted by the OS backlog and handled as
/// workers free up.
pub fn serve_with(
    server: Arc<MatchServer>,
    addr: impl ToSocketAddrs,
    max_connections: usize,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let acceptor = {
        let stop = stop.clone();
        let cap = max_connections.max(1);
        thread::spawn(move || accept_loop(listener, server, stop, cap))
    };
    Ok(ServerHandle { addr, stop, acceptor: Some(acceptor) })
}

fn accept_loop(listener: TcpListener, server: Arc<MatchServer>, stop: Arc<AtomicBool>, cap: usize) {
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::Acquire) {
        let (stream, _) = match listener.accept() {
            Ok(conn) => conn,
            Err(_) => continue,
        };
        if stop.load(Ordering::Acquire) {
            break; // the wake-up connection from shutdown
        }
        workers.retain(|w| !w.is_finished());
        while workers.len() >= cap && !stop.load(Ordering::Acquire) {
            thread::sleep(POLL);
            workers.retain(|w| !w.is_finished());
        }
        let server = server.clone();
        let stop = stop.clone();
        workers.push(thread::spawn(move || handle_connection(stream, &server, &stop)));
    }
    for worker in workers {
        let _ = worker.join();
    }
}

/// One connection's request loop: read a frame (polling so shutdown is
/// noticed), apply it, write the answer. Returns on clean client
/// close, on shutdown, or after answering a protocol error.
fn handle_connection(mut stream: TcpStream, server: &MatchServer, stop: &AtomicBool) {
    let _ = stream.set_read_timeout(Some(POLL));
    let _ = stream.set_nodelay(true);
    loop {
        let request = match read_request_polling(&mut stream, stop) {
            Ok(None) => return,
            Ok(Some(request)) => request,
            Err(e) => {
                // Framing state is unknown after a protocol error:
                // answer once, then close.
                let _ = write_response(&mut stream, &Response::Error { message: e.to_string() });
                return;
            }
        };
        let response = match apply(server, request) {
            Ok(response) => response,
            Err(e) => Response::Error { message: e.to_string() },
        };
        if write_response(&mut stream, &response).is_err() {
            return;
        }
    }
}

fn retriable(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted
    )
}

/// [`crate::server::wire::read_request`] over a socket with a read
/// timeout: timeouts while *no* frame is in flight re-check `stop` and
/// keep waiting; mid-frame timeouts keep reading (the client is
/// sending) unless `stop` fires.
fn read_request_polling(
    stream: &mut TcpStream,
    stop: &AtomicBool,
) -> Result<Option<Request>, ProtocolError> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < prefix.len() {
        match stream.read(&mut prefix[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(ProtocolError::Truncated { context: "frame length prefix" }),
            Ok(n) => filled += n,
            Err(e) if retriable(&e) => {
                if stop.load(Ordering::Acquire) {
                    return Ok(None);
                }
            }
            Err(e) => return Err(ProtocolError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_FRAME {
        return Err(ProtocolError::Oversized { len: len as u64 });
    }
    let mut body = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        match stream.read(&mut body[filled..]) {
            Ok(0) => return Err(ProtocolError::Truncated { context: "frame body" }),
            Ok(n) => filled += n,
            Err(e) if retriable(&e) => {
                if stop.load(Ordering::Acquire) {
                    return Ok(None);
                }
            }
            Err(e) => return Err(ProtocolError::Io(e)),
        }
    }
    Request::decode(&body).map(Some)
}

/// Applies one decoded request to the shared server.
fn apply(server: &MatchServer, request: Request) -> Result<Response, ServiceError> {
    match request {
        Request::Query { values } => {
            let probe = record_from(server.probe_schema(), values)?;
            Ok(Response::Query(query_to_wire(&server.query(&probe)?)))
        }
        Request::QueryBatch { probes } => {
            let schema = server.probe_schema();
            let records = probes
                .into_iter()
                .map(|values| record_from(schema.clone(), values))
                .collect::<Result<Vec<_>, _>>()?;
            let answers = server.query_batch(&records)?;
            Ok(Response::QueryBatch(answers.iter().map(query_to_wire).collect()))
        }
        Request::UpsertBatch { items } => {
            let schema = server.store_schema();
            let items = items
                .into_iter()
                .map(|(id, values)| Ok((RecordId(id), record_from(schema.clone(), values)?)))
                .collect::<Result<Vec<_>, ServiceError>>()?;
            let replaced = server.upsert_batch(&items)?;
            Ok(Response::UpsertBatch { replaced, version: server.version().number() })
        }
        Request::RemoveBatch { ids } => {
            let ids: Vec<RecordId> = ids.into_iter().map(RecordId).collect();
            server.remove_batch(&ids)?;
            Ok(Response::RemoveBatch { version: server.version().number() })
        }
        Request::Explain { values, id } => {
            let probe = record_from(server.probe_schema(), values)?;
            let explanation = server.explain(&probe, RecordId(id))?;
            Ok(Response::Explain {
                matched: explanation.matched,
                fired_key: explanation.fired_key.map(|k| k as u32),
                rendered: explanation.to_string(),
                version: explanation.version.number(),
            })
        }
        Request::SwapRules { md_text } => {
            Ok(Response::SwapRules { version: server.swap_rules(&md_text)?.number() })
        }
        Request::Stats => Ok(Response::Stats(stats_to_wire(server))),
        Request::QueryRanked { values, top_k, min_score_bits } => {
            let probe = record_from(server.probe_schema(), values)?;
            let response =
                server.query_ranked(&probe, top_k as usize, f64::from_bits(min_score_bits))?;
            Ok(Response::QueryRanked(ranked_to_wire(&response)))
        }
        Request::SubmitLabels { items } => {
            let probe_schema = server.probe_schema();
            let store_schema = server.store_schema();
            let pairs = items
                .into_iter()
                .map(|(left, right, is_match)| {
                    Ok((
                        record_from(probe_schema.clone(), left)?,
                        record_from(store_schema.clone(), right)?,
                        is_match,
                    ))
                })
                .collect::<Result<Vec<_>, ServiceError>>()?;
            let summary = server.submit_labels(&pairs)?;
            Ok(Response::SubmitLabels {
                added: summary.added as u64,
                total: summary.total as u64,
                positives: summary.positives as u64,
                negatives: summary.negatives as u64,
            })
        }
        Request::Refine { beta_bits } => {
            let (version, report) = server.refine(f64::from_bits(beta_bits))?;
            Ok(Response::Refine(WireRefinement {
                version: version.number(),
                pool_size: report.pool_size as u64,
                theta_variants: report.theta_variants_selected() as u64,
                exhaustive: report.exhaustive,
                before_precision_bits: report.before.precision().to_bits(),
                before_recall_bits: report.before.recall().to_bits(),
                before_f1_bits: report.before.f1().to_bits(),
                after_precision_bits: report.after.precision().to_bits(),
                after_recall_bits: report.after.recall().to_bits(),
                after_f1_bits: report.after.f1().to_bits(),
                rules: report.selected.iter().map(|r| r.rendered.clone()).collect(),
            }))
        }
    }
}

fn record_from(schema: Arc<Schema>, values: Vec<Option<String>>) -> Result<Record, ServiceError> {
    let values: Vec<Value> =
        values.into_iter().map(|v| v.map(Value::from).unwrap_or(Value::Null)).collect();
    Record::from_values(schema, values)
}

fn query_to_wire(response: &QueryResponse) -> WireQuery {
    WireQuery {
        hits: response.hits.iter().map(|h| WireHit { id: h.id.0, key: h.key as u32 }).collect(),
        candidates: response.candidates as u64,
        key_evals: response.key_evals as u64,
        version: response.version.number(),
    }
}

fn ranked_to_wire(response: &RankedResponse) -> WireRanked {
    WireRanked {
        hits: response
            .hits
            .iter()
            .map(|h| WireScoredHit { id: h.id.0, key: h.key as u32, score_bits: h.score.to_bits() })
            .collect(),
        candidates: response.candidates as u64,
        key_evals: response.key_evals as u64,
        version: response.version.number(),
    }
}

fn schema_to_wire(schema: &Schema) -> WireSchema {
    WireSchema {
        name: schema.name().to_owned(),
        attributes: schema.attributes().iter().map(|a| a.name().to_owned()).collect(),
    }
}

fn stats_to_wire(server: &MatchServer) -> WireStats {
    let stats = server.stats();
    WireStats {
        version: stats.version.number(),
        epoch: stats.epoch,
        shard_records: stats.shard_records.iter().map(|&n| n as u64).collect(),
        queries: stats.queries,
        batch_queries: stats.batch_queries,
        upserts: stats.upserts,
        removes: stats.removes,
        cache_hits: stats.cache_hits,
        cache_misses: stats.cache_misses,
        cache_invalidations: stats.cache_invalidations,
        exact_anchors: stats.index.exact_anchors,
        qgram_anchors: stats.index.qgram_anchors,
        derived_anchors: stats.index.derived_anchors,
        token_anchors: stats.index.token_anchors,
        bag_anchors: stats.index.bag_anchors,
        scan_keys: stats.index.scan_keys,
        store_schema: schema_to_wire(&server.store_schema()),
        probe_schema: schema_to_wire(&server.probe_schema()),
    }
}

// ---------------------------------------------------------------------
// Client side
// ---------------------------------------------------------------------

/// A client-side failure: a protocol error, a clean disconnect where an
/// answer was expected, a server-reported service failure, or a local
/// usage error.
#[derive(Debug)]
pub enum ClientError {
    /// The wire protocol failed (I/O included).
    Protocol(ProtocolError),
    /// The connection closed where a response was expected.
    Disconnected,
    /// The server answered [`Response::Error`].
    Server {
        /// The server's rendered error message.
        message: String,
    },
    /// The server answered with a response of the wrong kind.
    UnexpectedResponse {
        /// What the client was waiting for.
        expected: &'static str,
    },
    /// A field name matched no attribute of the schema learned from the
    /// server.
    UnknownField {
        /// The offending field name.
        field: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Protocol(e) => write!(f, "{e}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
            ClientError::Server { message } => write!(f, "server error: {message}"),
            ClientError::UnexpectedResponse { expected } => {
                write!(f, "unexpected response (waiting for {expected})")
            }
            ClientError::UnknownField { field } => {
                write!(f, "field {field:?} names no schema attribute")
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Protocol(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Protocol(ProtocolError::Io(e))
    }
}

/// A blocking client over one TCP connection. On connect it fetches
/// [`Response::Stats`] once to learn the server's schema pair, so
/// records and probes can be built by field name with no schema
/// knowledge compiled into the client.
#[derive(Debug)]
pub struct MatchClient {
    stream: TcpStream,
    store_schema: WireSchema,
    probe_schema: WireSchema,
}

/// One labeled pair on the client API: a probe-side record, a
/// store-side record (both as `(field, value)` pairs; unset fields are
/// null) and whether the two refer to the same entity.
pub type ClientLabel<'a> = (&'a [(&'a str, &'a str)], &'a [(&'a str, &'a str)], bool);

impl MatchClient {
    /// Connects and learns the schema pair from the server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<MatchClient, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut client = MatchClient {
            stream,
            store_schema: WireSchema { name: String::new(), attributes: Vec::new() },
            probe_schema: WireSchema { name: String::new(), attributes: Vec::new() },
        };
        let stats = client.stats()?;
        client.store_schema = stats.store_schema;
        client.probe_schema = stats.probe_schema;
        Ok(client)
    }

    /// The store-side schema learned at connect.
    pub fn store_schema(&self) -> &WireSchema {
        &self.store_schema
    }

    /// The probe-side schema learned at connect.
    pub fn probe_schema(&self) -> &WireSchema {
        &self.probe_schema
    }

    /// Sends any request and returns the server's answer — the typed
    /// escape hatch under the convenience methods. [`Response::Error`]
    /// is returned as-is here, not mapped to [`ClientError::Server`].
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_request(&mut self.stream, request)?;
        match read_response(&mut self.stream)? {
            None => Err(ClientError::Disconnected),
            Some(response) => Ok(response),
        }
    }

    /// [`MatchClient::request`], with [`Response::Error`] mapped to
    /// [`ClientError::Server`].
    fn checked(&mut self, request: &Request) -> Result<Response, ClientError> {
        match self.request(request)? {
            Response::Error { message } => Err(ClientError::Server { message }),
            response => Ok(response),
        }
    }

    fn values_for(
        schema: &WireSchema,
        fields: &[(&str, &str)],
    ) -> Result<Vec<Option<String>>, ClientError> {
        let mut values: Vec<Option<String>> = vec![None; schema.attributes.len()];
        for &(name, value) in fields {
            let slot = schema
                .attributes
                .iter()
                .position(|a| a == name)
                .ok_or_else(|| ClientError::UnknownField { field: name.to_owned() })?;
            values[slot] = Some(value.to_owned());
        }
        Ok(values)
    }

    /// Matches one probe given as `(field, value)` pairs against the
    /// probe schema; unset fields are null.
    pub fn query(&mut self, fields: &[(&str, &str)]) -> Result<WireQuery, ClientError> {
        let values = Self::values_for(&self.probe_schema, fields)?;
        match self.checked(&Request::Query { values })? {
            Response::Query(q) => Ok(q),
            _ => Err(ClientError::UnexpectedResponse { expected: "a query answer" }),
        }
    }

    /// Matches one probe ranked: the boolean hit set scored by the
    /// server's compiled score model, sorted by confidence descending,
    /// filtered to `score >= min_score` and truncated to `top_k`.
    /// Scores travel bit-exact (`f64::to_bits`): decode with
    /// `f64::from_bits(hit.score_bits)`.
    pub fn query_ranked(
        &mut self,
        fields: &[(&str, &str)],
        top_k: u32,
        min_score: f64,
    ) -> Result<WireRanked, ClientError> {
        let values = Self::values_for(&self.probe_schema, fields)?;
        let request = Request::QueryRanked { values, top_k, min_score_bits: min_score.to_bits() };
        match self.checked(&request)? {
            Response::QueryRanked(q) => Ok(q),
            _ => Err(ClientError::UnexpectedResponse { expected: "a ranked answer" }),
        }
    }

    /// Inserts or replaces one record given as `(field, value)` pairs;
    /// returns whether a record was replaced.
    pub fn upsert(&mut self, id: u64, fields: &[(&str, &str)]) -> Result<bool, ClientError> {
        let values = Self::values_for(&self.store_schema, fields)?;
        match self.checked(&Request::UpsertBatch { items: vec![(id, values)] })? {
            Response::UpsertBatch { replaced, .. } => {
                Ok(replaced.first().copied().unwrap_or(false))
            }
            _ => Err(ClientError::UnexpectedResponse { expected: "an upsert answer" }),
        }
    }

    /// Removes records by id.
    pub fn remove(&mut self, ids: &[u64]) -> Result<(), ClientError> {
        match self.checked(&Request::RemoveBatch { ids: ids.to_vec() })? {
            Response::RemoveBatch { .. } => Ok(()),
            _ => Err(ClientError::UnexpectedResponse { expected: "a remove answer" }),
        }
    }

    /// Explains the decision for one (probe, stored id) pair; returns
    /// `(matched, rendered explanation)`.
    pub fn explain(
        &mut self,
        fields: &[(&str, &str)],
        id: u64,
    ) -> Result<(bool, String), ClientError> {
        let values = Self::values_for(&self.probe_schema, fields)?;
        match self.checked(&Request::Explain { values, id })? {
            Response::Explain { matched, rendered, .. } => Ok((matched, rendered)),
            _ => Err(ClientError::UnexpectedResponse { expected: "an explanation" }),
        }
    }

    /// Replaces the server's rule set; returns the bumped version.
    pub fn swap_rules(&mut self, md_text: &str) -> Result<u64, ClientError> {
        match self.checked(&Request::SwapRules { md_text: md_text.to_owned() })? {
            Response::SwapRules { version } => Ok(version),
            _ => Err(ClientError::UnexpectedResponse { expected: "a swap answer" }),
        }
    }

    /// Submits labeled pairs — each a probe-side record, a store-side
    /// record (both as `(field, value)` pairs; unset fields are null)
    /// and whether the two refer to the same entity. Returns
    /// `(added, total)` label counts. The labels accumulate server-side
    /// as the training set [`MatchClient::refine`] selects against.
    pub fn submit_labels(&mut self, labels: &[ClientLabel<'_>]) -> Result<(u64, u64), ClientError> {
        let items = labels
            .iter()
            .map(|&(left, right, is_match)| {
                Ok((
                    Self::values_for(&self.probe_schema, left)?,
                    Self::values_for(&self.store_schema, right)?,
                    is_match,
                ))
            })
            .collect::<Result<Vec<_>, ClientError>>()?;
        match self.checked(&Request::SubmitLabels { items })? {
            Response::SubmitLabels { added, total, .. } => Ok((added, total)),
            _ => Err(ClientError::UnexpectedResponse { expected: "a label summary" }),
        }
    }

    /// Runs the server's refinement loop over the labels submitted so
    /// far and hot-swaps the selected rules in; returns the
    /// [`WireRefinement`] report (decode the `*_bits` quality fields
    /// with `f64::from_bits`).
    pub fn refine(&mut self, beta: f64) -> Result<WireRefinement, ClientError> {
        match self.checked(&Request::Refine { beta_bits: beta.to_bits() })? {
            Response::Refine(report) => Ok(report),
            _ => Err(ClientError::UnexpectedResponse { expected: "a refinement report" }),
        }
    }

    /// Fetches server counters and schemas.
    pub fn stats(&mut self) -> Result<WireStats, ClientError> {
        match self.checked(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            _ => Err(ClientError::UnexpectedResponse { expected: "server stats" }),
        }
    }
}
