//! The probe-result cache: answers keyed on
//! `(probe signature, view epoch)`, invalidated wholesale by epoch
//! bumps.
//!
//! A [`Record::signature`](crate::service::Record::signature) is a
//! stable 64-bit digest of a probe's schema and values, and the server's
//! view epoch moves on **every** publish — rule swaps and store
//! mutations alike — so a cached answer is returned only while it is
//! provably still the current answer: same probe bytes, same rules, same
//! store. A version bump (or any upsert) strands every entry at a stale
//! epoch at once; stale entries are overwritten on their next miss and
//! swept when the cache fills.
//!
//! The cache is generic over the answer type: the server keeps one
//! instance for boolean [`QueryResponse`](crate::service::QueryResponse)s
//! and one for ranked answers, each with its own hit/miss/invalidation
//! counters.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// An entry: the epoch the answer was computed at, and the answer.
struct CacheEntry<T> {
    epoch: u64,
    response: Arc<T>,
}

/// A bounded, epoch-validated probe-result cache.
pub(crate) struct ProbeCache<T> {
    capacity: usize,
    map: Mutex<HashMap<u64, CacheEntry<T>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
}

impl<T> ProbeCache<T> {
    /// A cache holding at most `capacity` answers; 0 disables caching.
    pub(crate) fn new(capacity: usize) -> Self {
        ProbeCache {
            capacity,
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// The cached answer for `sig` computed at exactly `epoch`, if any.
    /// An entry found at a stale epoch counts as an invalidation (and a
    /// miss).
    pub(crate) fn get(&self, sig: u64, epoch: u64) -> Option<Arc<T>> {
        if self.capacity == 0 {
            return None;
        }
        let map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        match map.get(&sig) {
            Some(entry) if entry.epoch == epoch => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.response.clone())
            }
            Some(_) => {
                self.invalidations.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores the answer for `sig` computed at `epoch`. When the cache
    /// is full, entries stranded at older epochs are swept first (each
    /// swept entry counts as an invalidation); if every entry is
    /// current, the whole cache is dropped rather than tracking
    /// recency — epoch invalidation makes entries cheap to recompute
    /// and wholesale drops keep the path std-only and O(1) amortized.
    pub(crate) fn put(&self, sig: u64, epoch: u64, response: Arc<T>) {
        if self.capacity == 0 {
            return;
        }
        let mut map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        if map.len() >= self.capacity && !map.contains_key(&sig) {
            let before = map.len();
            map.retain(|_, entry| entry.epoch == epoch);
            let swept = (before - map.len()) as u64;
            if swept > 0 {
                self.invalidations.fetch_add(swept, Ordering::Relaxed);
            }
            if map.len() >= self.capacity {
                map.clear();
            }
        }
        map.insert(sig, CacheEntry { epoch, response });
    }

    /// Live entries (stale ones included until swept).
    pub(crate) fn len(&self) -> usize {
        self.map.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// `(hits, misses, invalidations)` counters since construction.
    pub(crate) fn counters(&self) -> (u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.invalidations.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::FilterStats;
    use crate::service::{QueryResponse, RuleVersion};

    fn response() -> Arc<QueryResponse> {
        Arc::new(QueryResponse {
            hits: Vec::new(),
            candidates: 0,
            key_evals: 0,
            stats: FilterStats::default(),
            version: RuleVersion(1),
        })
    }

    #[test]
    fn hit_requires_matching_epoch() {
        let cache = ProbeCache::new(8);
        cache.put(42, 7, response());
        assert!(cache.get(42, 7).is_some());
        assert!(cache.get(42, 8).is_none(), "an epoch bump invalidates the entry");
        assert!(cache.get(41, 7).is_none());
        // One hit, two misses, and only the stale-epoch probe counts as
        // an invalidation (sig 41 was never cached).
        assert_eq!(cache.counters(), (1, 2, 1));
    }

    #[test]
    fn full_cache_sweeps_stale_entries_first() {
        let cache = ProbeCache::new(2);
        cache.put(1, 1, response());
        cache.put(2, 1, response());
        // Epoch moved: inserting at the new epoch sweeps the stale pair.
        cache.put(3, 2, response());
        assert!(cache.get(3, 2).is_some());
        assert!(cache.get(1, 2).is_none());
        assert!(cache.len() <= 2);
        let (_, _, invalidations) = cache.counters();
        assert_eq!(invalidations, 2, "both stale entries were swept");
        // All-current full cache: wholesale drop, then the insert lands.
        cache.put(4, 2, response());
        cache.put(5, 2, response());
        assert!(cache.get(5, 2).is_some());
        assert!(cache.len() <= 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ProbeCache::new(0);
        cache.put(1, 1, response());
        assert!(cache.get(1, 1).is_none());
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.counters(), (0, 0, 0), "a disabled cache counts nothing");
    }

    #[test]
    fn generic_over_answer_type() {
        // The ranked cache reuses the same machinery with a different
        // payload.
        let cache: ProbeCache<Vec<u64>> = ProbeCache::new(4);
        cache.put(9, 1, Arc::new(vec![1, 2, 3]));
        assert_eq!(cache.get(9, 1).as_deref(), Some(&vec![1, 2, 3]));
    }
}
