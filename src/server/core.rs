//! [`MatchServer`]: the sharded, concurrent server core.

use crate::engine::{
    schemas_compatible, EngineBuilder, FilterStats, MatchEngine, MatchIndex, MatchPlan,
};
use crate::refine::{LabelStore, RefineConfig, Refinement, RefinementReport, Refiner};
use crate::server::cache::ProbeCache;
use crate::service::{
    MatchExplanation, QueryResponse, RankedResponse, Record, RecordBuilder, RecordId, RuleVersion,
    ScoredHit, ServiceError, ServiceHit,
};
use matchrules_core::dependency::MatchingDependency;
use matchrules_core::schema::Schema;
use matchrules_data::relation::Relation;
use matchrules_runtime::{EpochCell, EpochReader, ExecConfig, WorkPool};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Construction knobs of a [`MatchServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Number of shards the store and index are split into; `0` resolves
    /// to the executor's thread count (at least 1). More shards mean
    /// more mutation concurrency and smaller copy-on-publish clones, at
    /// the cost of fanning every probe out further.
    pub shards: usize,
    /// Capacity of the probe-result cache (answers, not bytes); `0`
    /// disables caching.
    pub cache_capacity: usize,
    /// Thread budget for shard fan-out (probes, batch mutations, swap
    /// rebuilds) and for the TCP front's connection workers.
    pub exec: ExecConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { shards: 0, cache_capacity: 1024, exec: ExecConfig::default() }
    }
}

/// Routes a record id to its shard: a splitmix64 finalizer over the raw
/// id, reduced modulo the shard count. Dense sequential ids (the common
/// external-id shape) spread uniformly instead of striping.
fn shard_of(id: RecordId, shards: usize) -> usize {
    let mut x = id.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    (x % shards as u64) as usize
}

/// Folds one more word into a probe-signature digest (the ranked cache
/// keys on `(signature, top_k bucket, min_score bits)`): a splitmix64
/// round over the running value xor the next word.
fn mix_key(seed: u64, word: u64) -> u64 {
    let mut x = (seed ^ word).wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn check_schema(record: &Record, expected: &Arc<Schema>) -> Result<(), ServiceError> {
    if Arc::ptr_eq(record.schema(), expected) || schemas_compatible(record.schema(), expected) {
        Ok(())
    } else {
        Err(ServiceError::SchemaMismatch {
            expected: format!("{}/{}", expected.name(), expected.arity()),
            got: format!("{}/{}", record.schema().name(), record.schema().arity()),
        })
    }
}

/// One shard's immutable state: its slice of the store inside a
/// [`MatchIndex`], plus the global sequence number of every live record
/// (assigned at upsert in arrival order, across all shards) — what lets
/// a fan-out query merge per-shard hits back into the store order a
/// single-owner [`crate::service::MatchService`] would report.
struct ShardSnapshot {
    index: MatchIndex,
    seq_of: HashMap<u64, u64>,
}

/// One compiled rule set with its version stamp.
struct RuleEpoch {
    engine: MatchEngine,
    version: RuleVersion,
}

/// The whole server state as one immutable value: the current rules and
/// every shard snapshot. Published through a single [`EpochCell`], so
/// one load observes a *consistent* cross-shard view — a reader can
/// never see shard 0 at version 2 next to shard 1 at version 1.
struct ServerView {
    rules: Arc<RuleEpoch>,
    shards: Vec<Arc<ShardSnapshot>>,
}

/// Which anchor kinds the serving plan's [`MatchIndex`] compiled, via
/// [`ServerStats::index`]: how many RCK atoms retrieve through exact
/// buckets, q-gram postings, derived-key buckets, token postings or
/// char-bag prefix buckets — and how many keys fell back to scans.
///
/// Every shard compiles the same plan, so the anchor composition is a
/// property of the rule version, not of any shard's contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IndexKinds {
    /// Equality atoms indexed as exact buckets.
    pub exact_anchors: u64,
    /// Edit-distance atoms indexed as q-gram posting lists.
    pub qgram_anchors: u64,
    /// Phonetic/normalizing atoms indexed as derived-key buckets.
    pub derived_anchors: u64,
    /// Token/element-set atoms indexed as element posting lists.
    pub token_anchors: u64,
    /// Bounded atoms (Jaro–Winkler) indexed as char-bag prefix buckets.
    pub bag_anchors: u64,
    /// Keys with no indexable atom: every probe scans all live tuples.
    pub scan_keys: u64,
}

/// Aggregate counters of a [`MatchServer`], via [`MatchServer::stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerStats {
    /// The rule version currently serving.
    pub version: RuleVersion,
    /// The publish epoch — bumps on every mutation and every swap.
    pub epoch: u64,
    /// Live records per shard (the shard count is the length).
    pub shard_records: Vec<usize>,
    /// Total live records.
    pub records: usize,
    /// Probes answered (cache hits included) since construction.
    pub queries: u64,
    /// Batched query calls served since construction (each batch also
    /// adds its probe count to `queries`).
    pub batch_queries: u64,
    /// Records upserted since construction.
    pub upserts: u64,
    /// Records removed since construction.
    pub removes: u64,
    /// Probe-cache hits since construction (boolean and ranked caches
    /// summed).
    pub cache_hits: u64,
    /// Probe-cache misses since construction (both caches summed).
    pub cache_misses: u64,
    /// Cache invalidations since construction (both caches summed):
    /// entries found stranded at a stale epoch, plus stale entries
    /// swept to make room.
    pub cache_invalidations: u64,
    /// Entries currently held by the probe caches (both caches summed).
    pub cache_entries: usize,
    /// Anchor-kind composition of the serving rule version's index.
    pub index: IndexKinds,
}

/// The sharded, concurrent server core: a
/// [`MatchService`](crate::service::MatchService) re-architected for
/// many threads.
///
/// * **Sharding** — records are routed by a hash of their [`RecordId`]
///   to one of N shards, each holding its own
///   [`MatchIndex`](crate::engine::MatchIndex). Mutations on different
///   shards run concurrently (per-shard writer locks); a probe fans out
///   over all shards and merges hits back into global arrival order, so
///   answers are hit-for-hit identical to a single-owner service fed
///   the same operations.
/// * **Lock-free reads** — the entire state (rules + all shard
///   snapshots) is one immutable `ServerView` behind an
///   [`EpochCell`]; writers build replacements off to the side and swap
///   a pointer. Steady-state readers (see [`MatchServer::reader`])
///   revalidate with one atomic load and touch no lock.
/// * **Zero-downtime swap** — [`MatchServer::swap_rules`] recompiles,
///   rebuilds every shard's index at version v+1 off to the side, then
///   publishes the whole view in one store. Readers serve v until the
///   instant they serve v+1; no read ever blocks or fails. Mutations
///   are briefly gated (they would race the rebuild), reads never.
/// * **Probe cache** — answers are cached keyed on
///   ([`Record::signature`], publish epoch); any publish — upsert,
///   remove or swap — strands the whole cache at the old epoch at once,
///   so a stale answer can never be served.
///
/// The server takes `&self` everywhere and is `Send + Sync`: share it
/// behind an `Arc` and call it from as many threads as you like.
pub struct MatchServer {
    view: EpochCell<ServerView>,
    /// Writer gates, one per shard: serialize mutations *within* a
    /// shard while different shards proceed concurrently.
    shard_locks: Vec<Mutex<()>>,
    /// Mutators take `read`, [`MatchServer::swap_rules`] takes `write`:
    /// a swap sees a frozen store, mutations never interleave a
    /// rebuild. Queries take neither.
    swap_gate: RwLock<()>,
    pool: WorkPool,
    cache: ProbeCache<QueryResponse>,
    /// The ranked twin of `cache`: answers keyed on
    /// `(signature ⊕ top_k bucket ⊕ min_score bits, epoch)`. Ranked
    /// answers are computed and cached at the bucket cap (the next power
    /// of two ≥ `top_k`) and truncated per request, so nearby `top_k`
    /// values share entries.
    ranked_cache: ProbeCache<RankedResponse>,
    /// Labeled pairs accumulated from [`MatchServer::submit_labels`] —
    /// the training set [`MatchServer::refine`] selects against.
    labels: Mutex<LabelStore>,
    /// Global arrival counter; each upserted record is stamped with the
    /// next value so cross-shard hits can be merged in store order.
    seq: AtomicU64,
    queries: AtomicU64,
    batch_queries: AtomicU64,
    upserts: AtomicU64,
    removes: AtomicU64,
}

impl fmt::Debug for MatchServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (view, epoch) = self.view.load();
        f.debug_struct("MatchServer")
            .field("version", &view.rules.version)
            .field("epoch", &epoch)
            .field("shards", &view.shards.len())
            .field("records", &view.shards.iter().map(|s| s.index.len()).sum::<usize>())
            .finish()
    }
}

impl MatchServer {
    /// A server over `engine`'s compiled plan with [`ServerConfig`]
    /// defaults: one shard per executor thread, a 1024-entry probe
    /// cache, empty store, rule version `v1`.
    pub fn new(engine: MatchEngine) -> MatchServer {
        Self::with_config(engine, ServerConfig::default())
    }

    /// A server with explicit sharding/caching/threading knobs.
    pub fn with_config(engine: MatchEngine, config: ServerConfig) -> MatchServer {
        let pool = WorkPool::new(config.exec);
        let shards = if config.shards == 0 { pool.threads().max(1) } else { config.shards };
        let empty = Relation::new(engine.plan().pair().right().clone());
        let snapshots: Vec<Arc<ShardSnapshot>> = (0..shards)
            .map(|_| {
                let index = engine.index(&empty).expect("an empty relation has no duplicate ids");
                Arc::new(ShardSnapshot { index, seq_of: HashMap::new() })
            })
            .collect();
        let labels = Mutex::new(LabelStore::new(
            engine.plan().pair().left().clone(),
            engine.plan().pair().right().clone(),
        ));
        let rules = Arc::new(RuleEpoch { engine, version: RuleVersion(1) });
        MatchServer {
            view: EpochCell::new(Arc::new(ServerView { rules, shards: snapshots })),
            shard_locks: (0..shards).map(|_| Mutex::new(())).collect(),
            swap_gate: RwLock::new(()),
            pool,
            cache: ProbeCache::new(config.cache_capacity),
            ranked_cache: ProbeCache::new(config.cache_capacity),
            labels,
            seq: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            batch_queries: AtomicU64::new(0),
            upserts: AtomicU64::new(0),
            removes: AtomicU64::new(0),
        }
    }

    /// Number of shards (fixed at construction).
    pub fn shards(&self) -> usize {
        self.shard_locks.len()
    }

    /// The executor's resolved thread count — shard fan-out width, and
    /// what the TCP front sizes its connection-worker cap from.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The rule version currently serving.
    pub fn version(&self) -> RuleVersion {
        self.view.load().0.rules.version
    }

    /// The publish epoch: bumps on every mutation and every swap.
    pub fn epoch(&self) -> u64 {
        self.view.epoch()
    }

    /// The schema stored records instantiate (the plan's right side).
    pub fn store_schema(&self) -> Arc<Schema> {
        self.view.load().0.rules.engine.plan().pair().right().clone()
    }

    /// The schema probe records instantiate (the plan's left side).
    pub fn probe_schema(&self) -> Arc<Schema> {
        self.view.load().0.rules.engine.plan().pair().left().clone()
    }

    /// A [`RecordBuilder`] over the store schema.
    pub fn record_builder(&self) -> RecordBuilder {
        Record::builder(self.store_schema())
    }

    /// A [`RecordBuilder`] over the probe schema.
    pub fn probe_builder(&self) -> RecordBuilder {
        Record::builder(self.probe_schema())
    }

    /// Total live records across all shards.
    pub fn len(&self) -> usize {
        self.view.load().0.shards.iter().map(|s| s.index.len()).sum()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether a live record carries `id`.
    pub fn contains(&self, id: RecordId) -> bool {
        let (view, _) = self.view.load();
        view.shards[shard_of(id, view.shards.len())].index.contains(id.0)
    }

    /// The live record stored under `id`.
    pub fn get(&self, id: RecordId) -> Option<Record> {
        let (view, _) = self.view.load();
        let schema = view.rules.engine.plan().pair().right().clone();
        view.shards[shard_of(id, view.shards.len())]
            .index
            .get(id.0)
            .map(|t| Record::from_tuple(schema, t))
    }

    /// The live store as one relation, in global arrival (store) order —
    /// exactly what a single-owner service's
    /// [`snapshot`](crate::service::MatchService::snapshot) would hold
    /// after the same operations.
    pub fn snapshot(&self) -> Relation {
        let (view, _) = self.view.load();
        let mut rows: Vec<(u64, _)> = Vec::new();
        for shard in &view.shards {
            for tuple in shard.index.live_relation().tuples() {
                rows.push((shard.seq_of[&tuple.id()], tuple.clone()));
            }
        }
        rows.sort_unstable_by_key(|&(seq, _)| seq);
        let mut rel = Relation::new(view.rules.engine.plan().pair().right().clone());
        for (_, tuple) in rows {
            rel.push(tuple);
        }
        rel
    }

    /// Aggregate counters: version, epoch, per-shard sizes, query and
    /// mutation totals, cache effectiveness.
    pub fn stats(&self) -> ServerStats {
        let (view, epoch) = self.view.load();
        let shard_records: Vec<usize> = view.shards.iter().map(|s| s.index.len()).collect();
        let (bool_hits, bool_misses, bool_invalidations) = self.cache.counters();
        let (ranked_hits, ranked_misses, ranked_invalidations) = self.ranked_cache.counters();
        // Anchor kinds are identical across shards (same compiled plan);
        // read shard 0's composition rather than summing duplicates.
        let index = match view.shards.first() {
            Some(shard) => {
                let s = shard.index.stats();
                IndexKinds {
                    exact_anchors: s.exact_anchors as u64,
                    qgram_anchors: s.qgram_anchors as u64,
                    derived_anchors: s.derived_anchors as u64,
                    token_anchors: s.token_anchors as u64,
                    bag_anchors: s.bag_anchors as u64,
                    scan_keys: s.scan_keys as u64,
                }
            }
            None => IndexKinds::default(),
        };
        ServerStats {
            version: view.rules.version,
            epoch,
            records: shard_records.iter().sum(),
            shard_records,
            queries: self.queries.load(Ordering::Relaxed),
            batch_queries: self.batch_queries.load(Ordering::Relaxed),
            upserts: self.upserts.load(Ordering::Relaxed),
            removes: self.removes.load(Ordering::Relaxed),
            cache_hits: bool_hits + ranked_hits,
            cache_misses: bool_misses + ranked_misses,
            cache_invalidations: bool_invalidations + ranked_invalidations,
            cache_entries: self.cache.len() + self.ranked_cache.len(),
            index,
        }
    }

    /// A per-thread read handle whose steady-state query path takes no
    /// lock at all: it revalidates its cached `ServerView` with one
    /// atomic load and only refreshes after a publish.
    pub fn reader(&self) -> ServerReader<'_> {
        ServerReader { server: self, cached: EpochReader::new(&self.view) }
    }

    /// Every live record the probe matches, with the RCK that fired —
    /// hit-for-hit identical (ids, keys, order, version) to a
    /// single-owner [`MatchService::query`](crate::service::MatchService::query)
    /// fed the same operation sequence. Aggregate counters
    /// ([`QueryResponse::candidates`], [`QueryResponse::key_evals`],
    /// [`QueryResponse::stats`]) are summed across shards and may differ
    /// from the single-owner run: each shard prunes its own candidate
    /// retrieval independently.
    pub fn query(&self, probe: &Record) -> Result<QueryResponse, ServiceError> {
        let (view, epoch) = self.view.load();
        self.respond(&view, epoch, probe)
    }

    /// [`MatchServer::query`] for a batch of probes, all answered
    /// against one consistent view (no mutation or swap can interleave
    /// *within* the returned vector). Probes missing the cache are
    /// probed through each shard's
    /// [`query_batch`](crate::engine::MatchIndex::query_batch), sharing
    /// signature extraction and scratch across the whole miss set —
    /// answers stay response-for-response identical to
    /// [`MatchServer::query`] per probe. Schemas are validated up front;
    /// one malformed probe fails the batch before any work runs.
    pub fn query_batch(&self, probes: &[Record]) -> Result<Vec<QueryResponse>, ServiceError> {
        let (view, epoch) = self.view.load();
        let schema = view.rules.engine.plan().pair().left();
        for probe in probes {
            check_schema(probe, schema)?;
        }
        self.queries.fetch_add(probes.len() as u64, Ordering::Relaxed);
        self.batch_queries.fetch_add(1, Ordering::Relaxed);
        let mut responses: Vec<Option<QueryResponse>> = Vec::with_capacity(probes.len());
        let mut sigs: Vec<u64> = Vec::with_capacity(probes.len());
        let mut misses: Vec<usize> = Vec::new();
        for (i, probe) in probes.iter().enumerate() {
            let sig = probe.signature();
            sigs.push(sig);
            match self.cache.get(sig, epoch) {
                Some(cached) => responses.push(Some((*cached).clone())),
                None => {
                    responses.push(None);
                    misses.push(i);
                }
            }
        }
        if !misses.is_empty() {
            let tuples: Vec<_> = misses.iter().map(|&i| probes[i].to_tuple(0)).collect();
            let per_shard = self
                .pool
                .par_tasks(view.shards.len(), |s| view.shards[s].index.query_batch(&tuples));
            for (k, &i) in misses.iter().enumerate() {
                let mut hits: Vec<(u64, ServiceHit)> = Vec::new();
                let mut candidates = 0;
                let mut key_evals = 0;
                let mut stats = FilterStats::default();
                for (shard, outcomes) in view.shards.iter().zip(&per_shard) {
                    let outcome = &outcomes[k];
                    candidates += outcome.candidates;
                    key_evals += outcome.key_evals;
                    stats.merge(&outcome.stats);
                    for h in &outcome.hits {
                        hits.push((
                            shard.seq_of[&h.id],
                            ServiceHit { id: RecordId(h.id), key: h.key },
                        ));
                    }
                }
                hits.sort_unstable_by_key(|&(seq, _)| seq);
                let response = QueryResponse {
                    hits: hits.into_iter().map(|(_, h)| h).collect(),
                    candidates,
                    key_evals,
                    stats,
                    version: view.rules.version,
                };
                self.cache.put(sigs[i], epoch, Arc::new(response.clone()));
                responses[i] = Some(response);
            }
        }
        Ok(responses.into_iter().map(|r| r.expect("every probe answered")).collect())
    }

    /// [`MatchServer::query`], ranked: the same hit set the boolean
    /// query reports, scored by the plan's compiled
    /// [`ScoreModel`](crate::engine::ScoreModel), sorted by score
    /// descending (ties keep store order), filtered to
    /// `score >= min_score` and truncated to `top_k` — answer-for-answer
    /// identical (ids, keys, scores, order) to a single-owner
    /// [`MatchService::query_ranked`](crate::service::MatchService::query_ranked)
    /// fed the same operations, at any shard count. Scoring is a pure
    /// function of the immutable plan, so scores are byte-identical
    /// across thread counts and repeat queries at one rule version.
    ///
    /// Answers are cached at the `top_k` *bucket* cap (next power of
    /// two) keyed on `(signature, bucket, min_score bits, epoch)`, so
    /// nearby `top_k` values share cache entries.
    pub fn query_ranked(
        &self,
        probe: &Record,
        top_k: usize,
        min_score: f64,
    ) -> Result<RankedResponse, ServiceError> {
        let (view, epoch) = self.view.load();
        self.respond_ranked(&view, epoch, probe, top_k, min_score)
    }

    fn respond_ranked(
        &self,
        view: &ServerView,
        epoch: u64,
        probe: &Record,
        top_k: usize,
        min_score: f64,
    ) -> Result<RankedResponse, ServiceError> {
        if min_score.is_nan() {
            return Err(ServiceError::InvalidThreshold);
        }
        check_schema(probe, view.rules.engine.plan().pair().left())?;
        self.queries.fetch_add(1, Ordering::Relaxed);
        let bucket = top_k.checked_next_power_of_two().unwrap_or(usize::MAX);
        let sig = mix_key(mix_key(probe.signature(), bucket as u64), min_score.to_bits());
        if let Some(cached) = self.ranked_cache.get(sig, epoch) {
            let mut response = (*cached).clone();
            response.hits.truncate(top_k);
            return Ok(response);
        }
        let tuple = probe.to_tuple(0);
        let engine = &view.rules.engine;
        let model = engine.plan().score_model();
        let outcomes = self.pool.par_tasks(view.shards.len(), |s| {
            let shard = &view.shards[s];
            let outcome = shard.index.query(&tuple);
            let scored: Vec<(u64, ScoredHit)> = outcome
                .hits
                .iter()
                .map(|h| {
                    let stored = shard.index.get(h.id).expect("query hits are live records");
                    let score = model.score(engine.runtime(), &tuple, stored);
                    (shard.seq_of[&h.id], ScoredHit { id: RecordId(h.id), key: h.key, score })
                })
                .collect();
            (scored, outcome.candidates, outcome.key_evals)
        });
        let mut hits: Vec<(u64, ScoredHit)> = Vec::new();
        let mut candidates = 0;
        let mut key_evals = 0;
        for (scored, c, k) in outcomes {
            candidates += c;
            key_evals += k;
            hits.extend(scored);
        }
        // Store order first, then a *stable* sort by score: equal scores
        // keep global arrival order, exactly like the single-owner path.
        hits.sort_unstable_by_key(|&(seq, _)| seq);
        let mut hits: Vec<ScoredHit> = hits.into_iter().map(|(_, h)| h).collect();
        hits.sort_by(|a, b| b.score.total_cmp(&a.score));
        hits.retain(|h| h.score >= min_score);
        hits.truncate(bucket);
        let full = RankedResponse { hits, candidates, key_evals, version: view.rules.version };
        self.ranked_cache.put(sig, epoch, Arc::new(full.clone()));
        let mut response = full;
        response.hits.truncate(top_k);
        Ok(response)
    }

    fn respond(
        &self,
        view: &ServerView,
        epoch: u64,
        probe: &Record,
    ) -> Result<QueryResponse, ServiceError> {
        check_schema(probe, view.rules.engine.plan().pair().left())?;
        self.queries.fetch_add(1, Ordering::Relaxed);
        let sig = probe.signature();
        if let Some(cached) = self.cache.get(sig, epoch) {
            return Ok((*cached).clone());
        }
        let tuple = probe.to_tuple(0);
        let outcomes =
            self.pool.par_tasks(view.shards.len(), |s| view.shards[s].index.query(&tuple));
        let mut hits: Vec<(u64, ServiceHit)> = Vec::new();
        let mut candidates = 0;
        let mut key_evals = 0;
        let mut stats = FilterStats::default();
        for (shard, outcome) in view.shards.iter().zip(&outcomes) {
            candidates += outcome.candidates;
            key_evals += outcome.key_evals;
            stats.merge(&outcome.stats);
            for h in &outcome.hits {
                hits.push((shard.seq_of[&h.id], ServiceHit { id: RecordId(h.id), key: h.key }));
            }
        }
        // Per-shard hits arrive in shard-local slot order; the global
        // arrival stamp restores the store order a single owner reports.
        hits.sort_unstable_by_key(|&(seq, _)| seq);
        let response = QueryResponse {
            hits: hits.into_iter().map(|(_, h)| h).collect(),
            candidates,
            key_evals,
            stats,
            version: view.rules.version,
        };
        self.cache.put(sig, epoch, Arc::new(response.clone()));
        Ok(response)
    }

    /// Explains the decision for `(probe, stored record id)` under the
    /// current rules; agrees exactly with [`MatchServer::query`]. See
    /// [`MatchService::explain`](crate::service::MatchService::explain).
    pub fn explain(&self, probe: &Record, id: RecordId) -> Result<MatchExplanation, ServiceError> {
        let (view, _) = self.view.load();
        check_schema(probe, view.rules.engine.plan().pair().left())?;
        let trace = view.shards[shard_of(id, view.shards.len())]
            .index
            .explain(&probe.to_tuple(0), id.0)
            .map_err(|_| ServiceError::UnknownRecord { id })?;
        Ok(MatchExplanation::from_trace(trace, id, view.rules.engine.plan(), view.rules.version))
    }

    /// Inserts or replaces one record; returns whether a replacement
    /// happened. Equivalent to a one-element
    /// [`MatchServer::upsert_batch`].
    pub fn upsert(&self, id: RecordId, record: &Record) -> Result<bool, ServiceError> {
        Ok(self.upsert_batch(&[(id, record.clone())])?[0])
    }

    /// Inserts or replaces a batch of records, stamping each with the
    /// next global arrival number in input order; returns per-item
    /// replacement flags. Items are grouped by shard and the shard
    /// groups applied concurrently; every record is visible to queries
    /// as soon as its shard publishes. Mutations on the *same* shard
    /// serialize; a concurrent [`MatchServer::swap_rules`] is excluded
    /// for the duration. Schemas are validated up front, so a failed
    /// batch mutates nothing.
    pub fn upsert_batch(&self, items: &[(RecordId, Record)]) -> Result<Vec<bool>, ServiceError> {
        let _gate = self.swap_gate.read().unwrap_or_else(|e| e.into_inner());
        {
            // Rules cannot change while the gate is held, so one check
            // per item against the current store schema suffices.
            let (view, _) = self.view.load();
            let schema = view.rules.engine.plan().pair().right().clone();
            for (_, record) in items {
                check_schema(record, &schema)?;
            }
        }
        let shards = self.shard_locks.len();
        let base = self.seq.fetch_add(items.len() as u64, Ordering::Relaxed);
        let mut groups: Vec<Vec<(usize, u64)>> = vec![Vec::new(); shards];
        for (pos, (id, _)) in items.iter().enumerate() {
            groups[shard_of(*id, shards)].push((pos, base + pos as u64));
        }
        let occupied: Vec<usize> = (0..shards).filter(|&s| !groups[s].is_empty()).collect();
        let applied = self.pool.par_tasks(occupied.len(), |k| {
            self.apply_upserts(occupied[k], &groups[occupied[k]], items)
        });
        let mut replaced = vec![false; items.len()];
        for shard_result in applied {
            for (pos, flag) in shard_result? {
                replaced[pos] = flag;
            }
        }
        self.upserts.fetch_add(items.len() as u64, Ordering::Relaxed);
        Ok(replaced)
    }

    /// Applies one shard's slice of an upsert batch: clone the shard
    /// snapshot, mutate the clone, publish it. Holds the shard's writer
    /// lock so same-shard batches serialize; the publish itself is a
    /// pointer swap on the shared view.
    fn apply_upserts(
        &self,
        s: usize,
        ops: &[(usize, u64)],
        items: &[(RecordId, Record)],
    ) -> Result<Vec<(usize, bool)>, ServiceError> {
        let _shard = self.shard_locks[s].lock().unwrap_or_else(|e| e.into_inner());
        // Loaded under the shard lock: sees every earlier publish for
        // this shard (writers publish before releasing the lock).
        let (view, _) = self.view.load();
        let mut index = view.shards[s].index.clone();
        let mut seq_of = view.shards[s].seq_of.clone();
        let mut flags = Vec::with_capacity(ops.len());
        for &(pos, seq) in ops {
            let (id, record) = &items[pos];
            let replaced = index.contains(id.0);
            if replaced {
                index.remove(id.0)?;
            }
            index.insert(record.to_tuple(id.0))?;
            seq_of.insert(id.0, seq);
            flags.push((pos, replaced));
        }
        let snapshot = Arc::new(ShardSnapshot { index, seq_of });
        self.view.update(|v| {
            let mut shards = v.shards.clone();
            shards[s] = snapshot.clone();
            Arc::new(ServerView { rules: v.rules.clone(), shards })
        });
        Ok(flags)
    }

    /// Removes one record from query visibility. Equivalent to a
    /// one-element [`MatchServer::remove_batch`].
    pub fn remove(&self, id: RecordId) -> Result<(), ServiceError> {
        self.remove_batch(&[id])
    }

    /// Removes a batch of records, shard groups applied concurrently.
    /// An unknown id fails its *shard's* group wholesale before that
    /// shard publishes anything; other shards' groups still apply
    /// (mutation batches are atomic per shard, not across shards).
    pub fn remove_batch(&self, ids: &[RecordId]) -> Result<(), ServiceError> {
        let _gate = self.swap_gate.read().unwrap_or_else(|e| e.into_inner());
        let shards = self.shard_locks.len();
        let mut groups: Vec<Vec<RecordId>> = vec![Vec::new(); shards];
        for &id in ids {
            groups[shard_of(id, shards)].push(id);
        }
        let occupied: Vec<usize> = (0..shards).filter(|&s| !groups[s].is_empty()).collect();
        let applied = self
            .pool
            .par_tasks(occupied.len(), |k| self.apply_removes(occupied[k], &groups[occupied[k]]));
        for shard_result in applied {
            shard_result?;
        }
        self.removes.fetch_add(ids.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    fn apply_removes(&self, s: usize, ids: &[RecordId]) -> Result<(), ServiceError> {
        let _shard = self.shard_locks[s].lock().unwrap_or_else(|e| e.into_inner());
        let (view, _) = self.view.load();
        let mut index = view.shards[s].index.clone();
        let mut seq_of = view.shards[s].seq_of.clone();
        for &id in ids {
            index.remove(id.0).map_err(|_| ServiceError::UnknownRecord { id })?;
            seq_of.remove(&id.0);
        }
        let snapshot = Arc::new(ShardSnapshot { index, seq_of });
        self.view.update(|v| {
            let mut shards = v.shards.clone();
            shards[s] = snapshot.clone();
            Arc::new(ServerView { rules: v.rules.clone(), shards })
        });
        Ok(())
    }

    /// Replaces the rule set with MDs parsed from `md_text`, with
    /// **zero read downtime**: the new plan is compiled and every
    /// shard's index rebuilt at version v+1 entirely off to the side
    /// (reads keep serving v throughout, never blocking or failing),
    /// then the whole view — rules plus all shards — is published in
    /// one atomic store. Mutations are gated for the duration so the
    /// rebuild sees a frozen store. On error the old version keeps
    /// serving untouched. The rebuild also reclaims tombstoned slots
    /// (it doubles as a compaction).
    pub fn swap_rules(&self, md_text: &str) -> Result<RuleVersion, ServiceError> {
        let text = md_text.to_owned();
        self.swap_with(move |b| b.md_text(&text))
    }

    /// [`MatchServer::swap_rules`] for programmatic MDs; the same
    /// operator-table caveats as
    /// [`MatchService::swap_rules_with`](crate::service::MatchService::swap_rules_with)
    /// apply.
    pub fn swap_rules_with(
        &self,
        mds: Vec<MatchingDependency>,
    ) -> Result<RuleVersion, ServiceError> {
        self.swap_with(move |b| b.mds(mds))
    }

    fn swap_with(
        &self,
        add_rules: impl FnOnce(EngineBuilder) -> EngineBuilder,
    ) -> Result<RuleVersion, ServiceError> {
        self.swap_with_registry(None, add_rules)
    }

    /// [`MatchServer::swap_with`] with an optional registry override —
    /// the new engine compiles *and runs* against it, which is how a
    /// refined swap carries its θ-alias bindings into the serving
    /// runtime (not just its table). `None` keeps the serving registry.
    fn swap_with_registry(
        &self,
        registry: Option<crate::simdist::ops::OpRegistry>,
        add_rules: impl FnOnce(EngineBuilder) -> EngineBuilder,
    ) -> Result<RuleVersion, ServiceError> {
        let _gate = self.swap_gate.write().unwrap_or_else(|e| e.into_inner());
        let (view, _) = self.view.load();
        let registry = registry.unwrap_or_else(|| view.rules.engine.registry().clone());
        let builder =
            EngineBuilder::from_plan(view.rules.engine.plan()).operators(registry.clone());
        let plan = add_rules(builder).compile()?;
        let engine = MatchEngine::from_plan(plan, &registry)?;
        let rebuilt = self.pool.par_tasks(view.shards.len(), |s| {
            let shard = &view.shards[s];
            // Each rebuilt shard plans its atom intersections around the
            // selectivities its predecessor observed in live traffic.
            let index = engine
                .index_planned(&shard.index.live_relation(), &shard.index.observed_selectivity())?;
            Ok::<_, ServiceError>(Arc::new(ShardSnapshot { index, seq_of: shard.seq_of.clone() }))
        });
        let mut shards = Vec::with_capacity(rebuilt.len());
        for shard in rebuilt {
            shards.push(shard?);
        }
        let version = RuleVersion(view.rules.version.0 + 1);
        self.view
            .store(Arc::new(ServerView { rules: Arc::new(RuleEpoch { engine, version }), shards }));
        Ok(version)
    }

    /// Deploys a [`Refinement`] with the same zero-downtime mechanics as
    /// [`MatchServer::swap_rules`]: the refinement's selected rules swap
    /// in together with the extended operator table/registry they were
    /// compiled against (θ-sweep aliases included). The refinement's
    /// table must *extend* the serving plan's — otherwise the swap is
    /// refused with [`ServiceError::Refinement`] and the old version
    /// keeps serving.
    pub fn swap_rules_refined(&self, refinement: &Refinement) -> Result<RuleVersion, ServiceError> {
        if !refinement.extends(self.view.load().0.rules.engine.plan().ops()) {
            return Err(ServiceError::Refinement {
                message: "refinement's operator table does not extend the serving plan's \
                          (was it produced against a different server?)"
                    .to_owned(),
            });
        }
        if refinement.rules.is_empty() {
            return Err(ServiceError::Refinement {
                message: "refinement selected no rules; refusing to deploy an empty rule set"
                    .to_owned(),
            });
        }
        let ops = refinement.ops.clone();
        let rules = refinement.rules.clone();
        self.swap_with_registry(Some(refinement.registry.clone()), move |b| {
            b.operator_table(ops).mds(rules)
        })
    }

    /// Appends labeled pairs (probe record, stored-shape record, is a
    /// match) to the server's label store — the training set
    /// [`MatchServer::refine`] selects against. Duplicate pairs with the
    /// same label are idempotent; a pair re-submitted with the
    /// *opposite* label is a conflict and rejects the whole batch with
    /// [`ServiceError::Refinement`] (nothing from the batch is kept).
    /// Returns the label counts after the append.
    pub fn submit_labels(
        &self,
        pairs: &[(Record, Record, bool)],
    ) -> Result<LabelSummary, ServiceError> {
        let mut store = self.labels.lock().unwrap_or_else(|e| e.into_inner());
        // Stage on a copy so a mid-batch conflict leaves the store as it
        // was — the caller can fix the batch and resubmit it whole.
        let mut staged = store.clone();
        let mut added = 0usize;
        for (left, right, is_match) in pairs {
            let fresh = staged
                .insert(left.clone(), right.clone(), *is_match)
                .map_err(|e| ServiceError::Refinement { message: e.to_string() })?;
            if fresh {
                added += 1;
            }
        }
        *store = staged;
        Ok(LabelSummary {
            added,
            total: store.len(),
            positives: store.positives(),
            negatives: store.negatives(),
        })
    }

    /// Labels accumulated so far, without mutating anything.
    pub fn label_summary(&self) -> LabelSummary {
        let store = self.labels.lock().unwrap_or_else(|e| e.into_inner());
        LabelSummary {
            added: 0,
            total: store.len(),
            positives: store.positives(),
            negatives: store.negatives(),
        }
    }

    /// Runs the full refinement loop against the labels submitted so far
    /// — mine candidates, θ-sweep fuzzy atoms, evaluate through the
    /// indexed engine, select the F_β-maximizing subset — and hot-swaps
    /// the selected rules in with zero read downtime. Returns the new
    /// rule version and the [`RefinementReport`] (before/after quality,
    /// per-rule marginal gains, chosen θ per atom). On any error
    /// (no labels, nothing selected, compile failure) the old version
    /// keeps serving untouched.
    pub fn refine(&self, beta: f64) -> Result<(RuleVersion, RefinementReport), ServiceError> {
        self.refine_with(RefineConfig { beta, ..RefineConfig::default() })
    }

    /// [`MatchServer::refine`] with explicit [`RefineConfig`] knobs.
    pub fn refine_with(
        &self,
        config: RefineConfig,
    ) -> Result<(RuleVersion, RefinementReport), ServiceError> {
        let labels = self.labels.lock().unwrap_or_else(|e| e.into_inner()).clone();
        let (view, _) = self.view.load();
        let refiner = Refiner::new(view.rules.engine.plan(), view.rules.engine.registry())
            .with_config(config);
        let refinement = refiner
            .refine(&labels)
            .map_err(|e| ServiceError::Refinement { message: e.to_string() })?;
        let version = self.swap_rules_refined(&refinement)?;
        Ok((version, refinement.report))
    }

    /// The currently compiled plan, for rendering keys and inspecting
    /// rules. The plan is part of the immutable view: the returned
    /// `Arc` stays valid (and stays describing the version it was
    /// loaded at) across concurrent swaps.
    pub fn plan(&self) -> Arc<MatchPlan> {
        self.view.load().0.rules.engine.plan_arc()
    }
}

/// Label counts reported by [`MatchServer::submit_labels`] and
/// [`MatchServer::label_summary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabelSummary {
    /// How many pairs of the submitted batch were new (0 for
    /// [`MatchServer::label_summary`]).
    pub added: usize,
    /// Total deduplicated labeled pairs held.
    pub total: usize,
    /// Positive pairs held.
    pub positives: usize,
    /// Negative pairs held.
    pub negatives: usize,
}

/// A per-thread read handle over a [`MatchServer`]
/// (via [`MatchServer::reader`]): caches the last published
/// `ServerView` and revalidates it with a single atomic load, so a
/// saturated query loop takes no lock while no writer publishes.
pub struct ServerReader<'a> {
    server: &'a MatchServer,
    cached: EpochReader<ServerView>,
}

impl fmt::Debug for ServerReader<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServerReader").field("epoch", &self.cached.epoch()).finish()
    }
}

impl ServerReader<'_> {
    /// [`MatchServer::query`] through the cached view: lock-free while
    /// the epoch is unchanged, one refresh after a publish.
    pub fn query(&mut self, probe: &Record) -> Result<QueryResponse, ServiceError> {
        let view = self.cached.get(&self.server.view).clone();
        let epoch = self.cached.epoch();
        self.server.respond(&view, epoch, probe)
    }

    /// [`MatchServer::query_ranked`] through the cached view.
    pub fn query_ranked(
        &mut self,
        probe: &Record,
        top_k: usize,
        min_score: f64,
    ) -> Result<RankedResponse, ServiceError> {
        let view = self.cached.get(&self.server.view).clone();
        let epoch = self.cached.epoch();
        self.server.respond_ranked(&view, epoch, probe, top_k, min_score)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_routing_is_stable_and_covers_all_shards() {
        for shards in [1usize, 2, 8] {
            let mut seen = vec![false; shards];
            for id in 0..512u64 {
                let s = shard_of(RecordId(id), shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(RecordId(id), shards), "routing must be deterministic");
                seen[s] = true;
            }
            assert!(seen.iter().all(|&s| s), "512 sequential ids should touch every shard");
        }
    }

    #[test]
    fn default_config_resolves_shards_from_the_pool() {
        let config = ServerConfig::default();
        assert_eq!(config.shards, 0, "0 means auto");
        assert!(config.cache_capacity > 0);
    }
}
