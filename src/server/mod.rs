//! The sharded, concurrent server: [`MatchService`] semantics at
//! many-thread scale, plus a std-only TCP wire front.
//!
//! [`MatchService`](crate::service::MatchService) is single-owner
//! (`&mut self` mutations); this module re-architects the same
//! semantics for concurrency:
//!
//! * [`MatchServer`] — the core. Records are hashed by [`RecordId`]
//!   onto N shards, each an independent
//!   [`MatchIndex`](crate::engine::MatchIndex); mutations on different
//!   shards run concurrently, probes fan out over all shards and merge
//!   hits back into global arrival order. The whole state (rules + all
//!   shard snapshots) is one immutable view behind an atomically
//!   swapped epoch cell, so reads are lock-free in the steady state and
//!   a [`swap_rules`](MatchServer::swap_rules) rebuild at version v+1
//!   flips in with **zero read downtime**. Answers are cached keyed on
//!   ([`Record::signature`](crate::service::Record::signature), publish
//!   epoch) — any mutation or swap invalidates the cache wholesale.
//! * [`wire`] — a length-prefixed binary protocol (std-only, no serde)
//!   with typed [`ProtocolError`]s: `query`, `query_batch`,
//!   `upsert_batch`, `explain`, `swap_rules`, `stats`, every response
//!   carrying the [`RuleVersion`](crate::service::RuleVersion) and
//!   fired-RCK provenance.
//! * [`net`] — a thin [`std::net::TcpListener`] front serving the wire
//!   protocol worker-per-connection, and [`MatchClient`], the matching
//!   blocking client.
//!
//! ```
//! use matchrules::engine::EngineBuilder;
//! use matchrules::core::schema::Schema;
//! use matchrules::server::{MatchServer, ServerConfig};
//! use matchrules::service::RecordId;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let people = Schema::text("people", &["name", "phone", "email"])?;
//! let engine = EngineBuilder::new()
//!     .dedup_schema(people)
//!     .md_text("people[email] = people[email] -> people[name,phone] <=> people[name,phone]")
//!     .target(&["name", "phone"], &["name", "phone"])
//!     .build()?;
//! let server = MatchServer::with_config(engine, ServerConfig { shards: 4, ..Default::default() });
//!
//! let ada = server.record_builder()
//!     .field("name", "Ada Lovelace")
//!     .field("phone", "020-7946-0001")
//!     .field("email", "ada@example.org")
//!     .build()?;
//! server.upsert(RecordId(1), &ada)?; // &self — share the server across threads
//!
//! let probe = server.probe_builder()
//!     .field("name", "A. Lovelace")
//!     .field("email", "ada@example.org")
//!     .build()?;
//! let response = server.query(&probe)?;
//! assert_eq!(response.hits.len(), 1);
//! assert_eq!(response.version.number(), 1);
//! # Ok(()) }
//! ```
//!
//! [`MatchService`]: crate::service::MatchService
//! [`RecordId`]: crate::service::RecordId

mod cache;
mod core;
pub mod net;
pub mod wire;

pub use self::core::{
    IndexKinds, LabelSummary, MatchServer, ServerConfig, ServerReader, ServerStats,
};
pub use net::{ClientError, MatchClient, ServerHandle};
pub use wire::{ProtocolError, Request, Response};
