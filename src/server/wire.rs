//! The wire protocol: length-prefixed binary frames, std-only, with
//! typed errors.
//!
//! A frame is a big-endian `u32` byte length followed by that many body
//! bytes; the body is an opcode byte followed by the message fields.
//! Values (record fields) encode as a tag byte — `0` null, `1` string —
//! with strings as `u32` length + UTF-8 bytes. Counts are `u32`, ids and
//! counters `u64`. There is no self-description and no schema on the
//! wire: probes and records are positional value vectors against the
//! schemas the client learns from [`Response::Stats`].
//!
//! Decoding is **total**: any byte sequence either decodes to a message
//! or fails with a typed [`ProtocolError`] — truncated input, an unknown
//! tag, an oversized frame and trailing garbage are all errors, never
//! panics, and a frame longer than [`MAX_FRAME`] is rejected *before*
//! any allocation. [`read_frame`] distinguishes a clean end-of-stream
//! (`Ok(None)`) from a connection dying mid-frame
//! ([`ProtocolError::Truncated`]).

use std::fmt;
use std::io::{self, Read, Write};

/// Hard cap on a frame's body length (16 MiB). A peer announcing more
/// is rejected with [`ProtocolError::Oversized`] before any buffer is
/// allocated.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// A typed wire-protocol failure. Every malformed input maps to one of
/// these — decoding never panics.
#[derive(Debug)]
pub enum ProtocolError {
    /// A frame announced a body longer than [`MAX_FRAME`].
    Oversized {
        /// The announced body length.
        len: u64,
    },
    /// The input ended in the middle of the named field.
    Truncated {
        /// Which field was being read.
        context: &'static str,
    },
    /// An opcode or tag byte named no known variant.
    UnknownTag {
        /// Which field was being read.
        context: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// A string field was not valid UTF-8.
    InvalidUtf8 {
        /// Which field was being read.
        context: &'static str,
    },
    /// Bytes remained after a complete message was decoded.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
    /// The underlying stream failed.
    Io(io::Error),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Oversized { len } => {
                write!(f, "frame of {len} bytes exceeds the {MAX_FRAME}-byte limit")
            }
            ProtocolError::Truncated { context } => {
                write!(f, "input ended while reading {context}")
            }
            ProtocolError::UnknownTag { context, tag } => {
                write!(f, "unknown tag {tag:#04x} while reading {context}")
            }
            ProtocolError::InvalidUtf8 { context } => {
                write!(f, "invalid UTF-8 while reading {context}")
            }
            ProtocolError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after a complete message")
            }
            ProtocolError::Io(e) => write!(f, "stream error: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

/// One labeled pair on the wire: `(probe values, stored-shape values,
/// is a match)` — both sides positional against their schema, unset
/// fields null.
pub type WireLabel = (Vec<Option<String>>, Vec<Option<String>>, bool);

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Match one probe (positional values against the probe schema).
    Query {
        /// The probe's field values, in schema attribute order.
        values: Vec<Option<String>>,
    },
    /// Match many probes against one consistent view.
    QueryBatch {
        /// One value vector per probe.
        probes: Vec<Vec<Option<String>>>,
    },
    /// Insert or replace records under caller-chosen ids.
    UpsertBatch {
        /// `(id, field values)` pairs, applied in order.
        items: Vec<(u64, Vec<Option<String>>)>,
    },
    /// Remove records from query visibility.
    RemoveBatch {
        /// The ids to remove.
        ids: Vec<u64>,
    },
    /// Match one probe ranked: the boolean hit set scored, sorted by
    /// calibrated confidence, thresholded and truncated.
    QueryRanked {
        /// The probe's field values, in schema attribute order.
        values: Vec<Option<String>>,
        /// Maximum hits to return.
        top_k: u32,
        /// Minimum score to return, as `f64::to_bits` (bit-exact on the
        /// wire; NaN is rejected by the server).
        min_score_bits: u64,
    },
    /// Explain the decision for one (probe, stored record) pair.
    Explain {
        /// The probe's field values.
        values: Vec<Option<String>>,
        /// The stored record's id.
        id: u64,
    },
    /// Replace the rule set with MDs parsed from text.
    SwapRules {
        /// The MD set in the parser syntax.
        md_text: String,
    },
    /// Fetch server counters and the schema pair.
    Stats,
    /// Append labeled pairs to the server's label store — the training
    /// set [`Request::Refine`] selects against.
    SubmitLabels {
        /// `(probe values, stored-shape values, is a match)` triples.
        items: Vec<WireLabel>,
    },
    /// Run the refinement loop over the labels submitted so far and
    /// hot-swap the selected rules in.
    Refine {
        /// The β of the F_β selection objective, as `f64::to_bits`
        /// (1.0 = F1; non-finite or non-positive falls back to F1).
        beta_bits: u64,
    },
}

/// One query hit on the wire: the matched id and the index of the RCK
/// that fired (into the plan's key list — the fired-RCK provenance).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireHit {
    /// Id of the matched record.
    pub id: u64,
    /// Index of the first RCK that accepted the pair.
    pub key: u32,
}

/// A query answer on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireQuery {
    /// The matched records, in store order.
    pub hits: Vec<WireHit>,
    /// Candidates retrieved and verified for this probe.
    pub candidates: u64,
    /// RCK evaluations the verification ran.
    pub key_evals: u64,
    /// The rule version that produced this answer.
    pub version: u64,
}

/// One ranked hit on the wire: the matched id, the fired-RCK index, and
/// the calibrated score as `f64::to_bits` (bit-exact transport — ranked
/// answers are byte-identical across the wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireScoredHit {
    /// Id of the matched record.
    pub id: u64,
    /// Index of the first RCK that accepted the pair.
    pub key: u32,
    /// The calibrated match confidence, as `f64::to_bits`.
    pub score_bits: u64,
}

/// A ranked query answer on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireRanked {
    /// The surviving hits, sorted by score descending.
    pub hits: Vec<WireScoredHit>,
    /// Candidates retrieved and verified for this probe.
    pub candidates: u64,
    /// RCK evaluations the verification ran.
    pub key_evals: u64,
    /// The rule version that produced this answer.
    pub version: u64,
}

/// One schema on the wire: its name and attribute names in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireSchema {
    /// The schema name.
    pub name: String,
    /// Attribute names, in positional order.
    pub attributes: Vec<String>,
}

/// Server counters and schemas on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireStats {
    /// The rule version currently serving.
    pub version: u64,
    /// The publish epoch (bumps on every mutation and swap).
    pub epoch: u64,
    /// Live records per shard.
    pub shard_records: Vec<u64>,
    /// Probes answered since the server started.
    pub queries: u64,
    /// Batched query calls served since the server started (each batch
    /// also adds its probe count to `queries`).
    pub batch_queries: u64,
    /// Records upserted since the server started.
    pub upserts: u64,
    /// Records removed since the server started.
    pub removes: u64,
    /// Probe-cache hits.
    pub cache_hits: u64,
    /// Probe-cache misses.
    pub cache_misses: u64,
    /// Probe-cache invalidations (stale-epoch lookups and sweeps).
    pub cache_invalidations: u64,
    /// Equality atoms indexed as exact buckets.
    pub exact_anchors: u64,
    /// Edit-distance atoms indexed as q-gram posting lists.
    pub qgram_anchors: u64,
    /// Phonetic/normalizing atoms indexed as derived-key buckets.
    pub derived_anchors: u64,
    /// Token/element-set atoms indexed as element posting lists.
    pub token_anchors: u64,
    /// Bounded atoms indexed as char-bag prefix buckets.
    pub bag_anchors: u64,
    /// Keys with no indexable atom (scan fallback).
    pub scan_keys: u64,
    /// The schema stored records instantiate.
    pub store_schema: WireSchema,
    /// The schema probes instantiate.
    pub probe_schema: WireSchema,
}

/// A refinement outcome on the wire: the deployed version, before/after
/// quality on the labeled sample (as `f64::to_bits`), and the selected
/// rules rendered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireRefinement {
    /// The bumped rule version now serving the selected rules.
    pub version: u64,
    /// Candidates evaluated (seed + hand-written + mined + θ-variants).
    pub pool_size: u64,
    /// How many of the selected rules are θ-sweep variants.
    pub theta_variants: u64,
    /// Whether exact exhaustive selection ran (vs greedy).
    pub exhaustive: bool,
    /// Precision of the previous rules on the labels, as `f64::to_bits`.
    pub before_precision_bits: u64,
    /// Recall of the previous rules on the labels, as `f64::to_bits`.
    pub before_recall_bits: u64,
    /// F1 of the previous rules on the labels, as `f64::to_bits`.
    pub before_f1_bits: u64,
    /// Precision of the selected rules on the labels, as `f64::to_bits`.
    pub after_precision_bits: u64,
    /// Recall of the selected rules on the labels, as `f64::to_bits`.
    pub after_recall_bits: u64,
    /// F1 of the selected rules on the labels, as `f64::to_bits`.
    pub after_f1_bits: u64,
    /// The selected rules, rendered with relation/attribute/operator
    /// names.
    pub rules: Vec<String>,
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Answer to [`Request::Query`].
    Query(WireQuery),
    /// Answer to [`Request::QueryBatch`], one entry per probe.
    QueryBatch(Vec<WireQuery>),
    /// Answer to [`Request::UpsertBatch`].
    UpsertBatch {
        /// Per-item replacement flags, in input order.
        replaced: Vec<bool>,
        /// The rule version the batch was applied under.
        version: u64,
    },
    /// Answer to [`Request::RemoveBatch`].
    RemoveBatch {
        /// The rule version the batch was applied under.
        version: u64,
    },
    /// Answer to [`Request::QueryRanked`].
    QueryRanked(WireRanked),
    /// Answer to [`Request::Explain`].
    Explain {
        /// Whether the pair matches.
        matched: bool,
        /// Index of the fired RCK, when one accepted.
        fired_key: Option<u32>,
        /// The rendered explanation (human-readable).
        rendered: String,
        /// The rule version that produced the explanation.
        version: u64,
    },
    /// Answer to [`Request::SwapRules`].
    SwapRules {
        /// The bumped rule version now serving.
        version: u64,
    },
    /// Answer to [`Request::Stats`].
    Stats(WireStats),
    /// Answer to [`Request::SubmitLabels`].
    SubmitLabels {
        /// How many submitted pairs were new (not already labeled).
        added: u64,
        /// Total deduplicated labeled pairs held after the append.
        total: u64,
        /// Positive pairs held.
        positives: u64,
        /// Negative pairs held.
        negatives: u64,
    },
    /// Answer to [`Request::Refine`].
    Refine(WireRefinement),
    /// The request was understood but failed at the service layer
    /// (schema mismatch, unknown record, rule compile error, …).
    Error {
        /// The rendered service error.
        message: String,
    },
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_value(out: &mut Vec<u8>, v: &Option<String>) {
    match v {
        None => out.push(0),
        Some(s) => {
            out.push(1);
            put_str(out, s);
        }
    }
}

fn put_values(out: &mut Vec<u8>, values: &[Option<String>]) {
    put_u32(out, values.len() as u32);
    for v in values {
        put_value(out, v);
    }
}

fn put_schema(out: &mut Vec<u8>, s: &WireSchema) {
    put_str(out, &s.name);
    put_u32(out, s.attributes.len() as u32);
    for a in &s.attributes {
        put_str(out, a);
    }
}

fn put_wire_query(out: &mut Vec<u8>, q: &WireQuery) {
    put_u32(out, q.hits.len() as u32);
    for h in &q.hits {
        put_u64(out, h.id);
        put_u32(out, h.key);
    }
    put_u64(out, q.candidates);
    put_u64(out, q.key_evals);
    put_u64(out, q.version);
}

fn put_wire_ranked(out: &mut Vec<u8>, q: &WireRanked) {
    put_u32(out, q.hits.len() as u32);
    for h in &q.hits {
        put_u64(out, h.id);
        put_u32(out, h.key);
        put_u64(out, h.score_bits);
    }
    put_u64(out, q.candidates);
    put_u64(out, q.key_evals);
    put_u64(out, q.version);
}

impl Request {
    /// Encodes the message body (opcode + fields, no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Query { values } => {
                out.push(1);
                put_values(&mut out, values);
            }
            Request::QueryBatch { probes } => {
                out.push(2);
                put_u32(&mut out, probes.len() as u32);
                for p in probes {
                    put_values(&mut out, p);
                }
            }
            Request::UpsertBatch { items } => {
                out.push(3);
                put_u32(&mut out, items.len() as u32);
                for (id, values) in items {
                    put_u64(&mut out, *id);
                    put_values(&mut out, values);
                }
            }
            Request::RemoveBatch { ids } => {
                out.push(4);
                put_u32(&mut out, ids.len() as u32);
                for id in ids {
                    put_u64(&mut out, *id);
                }
            }
            Request::Explain { values, id } => {
                out.push(5);
                put_values(&mut out, values);
                put_u64(&mut out, *id);
            }
            Request::SwapRules { md_text } => {
                out.push(6);
                put_str(&mut out, md_text);
            }
            Request::Stats => out.push(7),
            Request::QueryRanked { values, top_k, min_score_bits } => {
                out.push(8);
                put_values(&mut out, values);
                put_u32(&mut out, *top_k);
                put_u64(&mut out, *min_score_bits);
            }
            Request::SubmitLabels { items } => {
                out.push(9);
                put_u32(&mut out, items.len() as u32);
                for (left, right, is_match) in items {
                    put_values(&mut out, left);
                    put_values(&mut out, right);
                    out.push(*is_match as u8);
                }
            }
            Request::Refine { beta_bits } => {
                out.push(10);
                put_u64(&mut out, *beta_bits);
            }
        }
        out
    }

    /// Decodes one message from a complete frame body; every byte must
    /// be consumed.
    pub fn decode(body: &[u8]) -> Result<Request, ProtocolError> {
        let mut r = Reader { buf: body, pos: 0 };
        let request = match r.u8("request opcode")? {
            1 => Request::Query { values: r.values()? },
            2 => {
                let n = r.count("probe count")?;
                let mut probes = Vec::with_capacity(n);
                for _ in 0..n {
                    probes.push(r.values()?);
                }
                Request::QueryBatch { probes }
            }
            3 => {
                let n = r.count("item count")?;
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    let id = r.u64("record id")?;
                    items.push((id, r.values()?));
                }
                Request::UpsertBatch { items }
            }
            4 => {
                let n = r.count("id count")?;
                let mut ids = Vec::with_capacity(n);
                for _ in 0..n {
                    ids.push(r.u64("record id")?);
                }
                Request::RemoveBatch { ids }
            }
            5 => {
                let values = r.values()?;
                Request::Explain { values, id: r.u64("record id")? }
            }
            6 => Request::SwapRules { md_text: r.string("md text")? },
            7 => Request::Stats,
            8 => {
                let values = r.values()?;
                let top_k = r.u32("top-k")?;
                Request::QueryRanked { values, top_k, min_score_bits: r.u64("min-score bits")? }
            }
            9 => {
                let n = r.count("label count")?;
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    let left = r.values()?;
                    let right = r.values()?;
                    items.push((left, right, r.bool("label polarity")?));
                }
                Request::SubmitLabels { items }
            }
            10 => Request::Refine { beta_bits: r.u64("beta bits")? },
            tag => return Err(ProtocolError::UnknownTag { context: "request opcode", tag }),
        };
        r.finish()?;
        Ok(request)
    }
}

impl Response {
    /// Encodes the message body (opcode + fields, no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Query(q) => {
                out.push(1);
                put_wire_query(&mut out, q);
            }
            Response::QueryBatch(qs) => {
                out.push(2);
                put_u32(&mut out, qs.len() as u32);
                for q in qs {
                    put_wire_query(&mut out, q);
                }
            }
            Response::UpsertBatch { replaced, version } => {
                out.push(3);
                put_u32(&mut out, replaced.len() as u32);
                for &b in replaced {
                    out.push(b as u8);
                }
                put_u64(&mut out, *version);
            }
            Response::RemoveBatch { version } => {
                out.push(4);
                put_u64(&mut out, *version);
            }
            Response::Explain { matched, fired_key, rendered, version } => {
                out.push(5);
                out.push(*matched as u8);
                match fired_key {
                    None => out.push(0),
                    Some(k) => {
                        out.push(1);
                        put_u32(&mut out, *k);
                    }
                }
                put_str(&mut out, rendered);
                put_u64(&mut out, *version);
            }
            Response::SwapRules { version } => {
                out.push(6);
                put_u64(&mut out, *version);
            }
            Response::Stats(s) => {
                out.push(7);
                put_u64(&mut out, s.version);
                put_u64(&mut out, s.epoch);
                put_u32(&mut out, s.shard_records.len() as u32);
                for &n in &s.shard_records {
                    put_u64(&mut out, n);
                }
                put_u64(&mut out, s.queries);
                put_u64(&mut out, s.batch_queries);
                put_u64(&mut out, s.upserts);
                put_u64(&mut out, s.removes);
                put_u64(&mut out, s.cache_hits);
                put_u64(&mut out, s.cache_misses);
                put_u64(&mut out, s.cache_invalidations);
                put_u64(&mut out, s.exact_anchors);
                put_u64(&mut out, s.qgram_anchors);
                put_u64(&mut out, s.derived_anchors);
                put_u64(&mut out, s.token_anchors);
                put_u64(&mut out, s.bag_anchors);
                put_u64(&mut out, s.scan_keys);
                put_schema(&mut out, &s.store_schema);
                put_schema(&mut out, &s.probe_schema);
            }
            Response::QueryRanked(q) => {
                out.push(8);
                put_wire_ranked(&mut out, q);
            }
            Response::SubmitLabels { added, total, positives, negatives } => {
                out.push(9);
                put_u64(&mut out, *added);
                put_u64(&mut out, *total);
                put_u64(&mut out, *positives);
                put_u64(&mut out, *negatives);
            }
            Response::Refine(rf) => {
                out.push(10);
                put_u64(&mut out, rf.version);
                put_u64(&mut out, rf.pool_size);
                put_u64(&mut out, rf.theta_variants);
                out.push(rf.exhaustive as u8);
                put_u64(&mut out, rf.before_precision_bits);
                put_u64(&mut out, rf.before_recall_bits);
                put_u64(&mut out, rf.before_f1_bits);
                put_u64(&mut out, rf.after_precision_bits);
                put_u64(&mut out, rf.after_recall_bits);
                put_u64(&mut out, rf.after_f1_bits);
                put_u32(&mut out, rf.rules.len() as u32);
                for rule in &rf.rules {
                    put_str(&mut out, rule);
                }
            }
            Response::Error { message } => {
                out.push(255);
                put_str(&mut out, message);
            }
        }
        out
    }

    /// Decodes one message from a complete frame body; every byte must
    /// be consumed.
    pub fn decode(body: &[u8]) -> Result<Response, ProtocolError> {
        let mut r = Reader { buf: body, pos: 0 };
        let response = match r.u8("response opcode")? {
            1 => Response::Query(r.wire_query()?),
            2 => {
                let n = r.count("answer count")?;
                let mut qs = Vec::with_capacity(n);
                for _ in 0..n {
                    qs.push(r.wire_query()?);
                }
                Response::QueryBatch(qs)
            }
            3 => {
                let n = r.count("flag count")?;
                let mut replaced = Vec::with_capacity(n);
                for _ in 0..n {
                    replaced.push(r.bool("replacement flag")?);
                }
                Response::UpsertBatch { replaced, version: r.u64("rule version")? }
            }
            4 => Response::RemoveBatch { version: r.u64("rule version")? },
            5 => {
                let matched = r.bool("matched flag")?;
                let fired_key = match r.u8("fired-key tag")? {
                    0 => None,
                    1 => Some(r.u32("fired key")?),
                    tag => return Err(ProtocolError::UnknownTag { context: "fired-key tag", tag }),
                };
                let rendered = r.string("rendered explanation")?;
                Response::Explain { matched, fired_key, rendered, version: r.u64("rule version")? }
            }
            6 => Response::SwapRules { version: r.u64("rule version")? },
            7 => {
                let version = r.u64("rule version")?;
                let epoch = r.u64("epoch")?;
                let n = r.count("shard count")?;
                let mut shard_records = Vec::with_capacity(n);
                for _ in 0..n {
                    shard_records.push(r.u64("shard record count")?);
                }
                Response::Stats(WireStats {
                    version,
                    epoch,
                    shard_records,
                    queries: r.u64("query counter")?,
                    batch_queries: r.u64("batch query counter")?,
                    upserts: r.u64("upsert counter")?,
                    removes: r.u64("remove counter")?,
                    cache_hits: r.u64("cache hits")?,
                    cache_misses: r.u64("cache misses")?,
                    cache_invalidations: r.u64("cache invalidations")?,
                    exact_anchors: r.u64("exact anchors")?,
                    qgram_anchors: r.u64("qgram anchors")?,
                    derived_anchors: r.u64("derived anchors")?,
                    token_anchors: r.u64("token anchors")?,
                    bag_anchors: r.u64("bag anchors")?,
                    scan_keys: r.u64("scan keys")?,
                    store_schema: r.schema()?,
                    probe_schema: r.schema()?,
                })
            }
            8 => Response::QueryRanked(r.wire_ranked()?),
            9 => Response::SubmitLabels {
                added: r.u64("added counter")?,
                total: r.u64("label total")?,
                positives: r.u64("positive count")?,
                negatives: r.u64("negative count")?,
            },
            10 => {
                let version = r.u64("rule version")?;
                let pool_size = r.u64("pool size")?;
                let theta_variants = r.u64("theta variant count")?;
                let exhaustive = r.bool("exhaustive flag")?;
                let before_precision_bits = r.u64("before precision bits")?;
                let before_recall_bits = r.u64("before recall bits")?;
                let before_f1_bits = r.u64("before f1 bits")?;
                let after_precision_bits = r.u64("after precision bits")?;
                let after_recall_bits = r.u64("after recall bits")?;
                let after_f1_bits = r.u64("after f1 bits")?;
                let n = r.count("rule count")?;
                let mut rules = Vec::with_capacity(n);
                for _ in 0..n {
                    rules.push(r.string("rendered rule")?);
                }
                Response::Refine(WireRefinement {
                    version,
                    pool_size,
                    theta_variants,
                    exhaustive,
                    before_precision_bits,
                    before_recall_bits,
                    before_f1_bits,
                    after_precision_bits,
                    after_recall_bits,
                    after_f1_bits,
                    rules,
                })
            }
            255 => Response::Error { message: r.string("error message")? },
            tag => return Err(ProtocolError::UnknownTag { context: "response opcode", tag }),
        };
        r.finish()?;
        Ok(response)
    }
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// A bounds-checked cursor over a frame body. Every read either
/// advances or fails with a typed error naming the field.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], ProtocolError> {
        if self.buf.len() - self.pos < n {
            return Err(ProtocolError::Truncated { context });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self, context: &'static str) -> Result<u8, ProtocolError> {
        Ok(self.take(1, context)?[0])
    }

    fn bool(&mut self, context: &'static str) -> Result<bool, ProtocolError> {
        match self.u8(context)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(ProtocolError::UnknownTag { context, tag }),
        }
    }

    fn u32(&mut self, context: &'static str) -> Result<u32, ProtocolError> {
        Ok(u32::from_be_bytes(self.take(4, context)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self, context: &'static str) -> Result<u64, ProtocolError> {
        Ok(u64::from_be_bytes(self.take(8, context)?.try_into().expect("8 bytes")))
    }

    /// An element count, sanity-bounded by the remaining bytes (every
    /// element occupies at least one byte) so a hostile count can never
    /// drive a huge allocation.
    fn count(&mut self, context: &'static str) -> Result<usize, ProtocolError> {
        let n = self.u32(context)? as usize;
        if n > self.buf.len() - self.pos {
            return Err(ProtocolError::Truncated { context });
        }
        Ok(n)
    }

    fn string(&mut self, context: &'static str) -> Result<String, ProtocolError> {
        let len = self.u32(context)? as usize;
        let bytes = self.take(len, context)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtocolError::InvalidUtf8 { context })
    }

    fn value(&mut self) -> Result<Option<String>, ProtocolError> {
        match self.u8("value tag")? {
            0 => Ok(None),
            1 => Ok(Some(self.string("value string")?)),
            tag => Err(ProtocolError::UnknownTag { context: "value tag", tag }),
        }
    }

    fn values(&mut self) -> Result<Vec<Option<String>>, ProtocolError> {
        let n = self.count("value count")?;
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            values.push(self.value()?);
        }
        Ok(values)
    }

    fn schema(&mut self) -> Result<WireSchema, ProtocolError> {
        let name = self.string("schema name")?;
        let n = self.count("attribute count")?;
        let mut attributes = Vec::with_capacity(n);
        for _ in 0..n {
            attributes.push(self.string("attribute name")?);
        }
        Ok(WireSchema { name, attributes })
    }

    fn wire_query(&mut self) -> Result<WireQuery, ProtocolError> {
        let n = self.count("hit count")?;
        let mut hits = Vec::with_capacity(n);
        for _ in 0..n {
            let id = self.u64("hit id")?;
            hits.push(WireHit { id, key: self.u32("hit key")? });
        }
        Ok(WireQuery {
            hits,
            candidates: self.u64("candidate counter")?,
            key_evals: self.u64("key-eval counter")?,
            version: self.u64("rule version")?,
        })
    }

    fn wire_ranked(&mut self) -> Result<WireRanked, ProtocolError> {
        let n = self.count("hit count")?;
        let mut hits = Vec::with_capacity(n);
        for _ in 0..n {
            let id = self.u64("hit id")?;
            let key = self.u32("hit key")?;
            hits.push(WireScoredHit { id, key, score_bits: self.u64("hit score bits")? });
        }
        Ok(WireRanked {
            hits,
            candidates: self.u64("candidate counter")?,
            key_evals: self.u64("key-eval counter")?,
            version: self.u64("rule version")?,
        })
    }

    fn finish(self) -> Result<(), ProtocolError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtocolError::TrailingBytes { extra: self.buf.len() - self.pos })
        }
    }
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// Writes one frame: a big-endian `u32` length prefix, then `body`.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> Result<(), ProtocolError> {
    if body.len() > MAX_FRAME {
        return Err(ProtocolError::Oversized { len: body.len() as u64 });
    }
    w.write_all(&(body.len() as u32).to_be_bytes())?;
    w.write_all(body)?;
    w.flush()?;
    Ok(())
}

/// Reads until `buf` is full or the stream ends; returns the bytes
/// read. `Interrupted` is retried, any other I/O error propagates.
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> Result<usize, ProtocolError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ProtocolError::Io(e)),
        }
    }
    Ok(filled)
}

/// Reads one frame body. `Ok(None)` is a clean end-of-stream (the peer
/// closed between frames); a stream ending mid-prefix or mid-body is
/// [`ProtocolError::Truncated`], and a prefix announcing more than
/// [`MAX_FRAME`] bytes is rejected before any allocation.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, ProtocolError> {
    let mut prefix = [0u8; 4];
    match read_full(r, &mut prefix)? {
        0 => return Ok(None),
        4 => {}
        _ => return Err(ProtocolError::Truncated { context: "frame length prefix" }),
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_FRAME {
        return Err(ProtocolError::Oversized { len: len as u64 });
    }
    let mut body = vec![0u8; len];
    if read_full(r, &mut body)? != len {
        return Err(ProtocolError::Truncated { context: "frame body" });
    }
    Ok(Some(body))
}

/// Writes one request as a frame.
pub fn write_request(w: &mut impl Write, request: &Request) -> Result<(), ProtocolError> {
    write_frame(w, &request.encode())
}

/// Reads one request; `Ok(None)` on clean end-of-stream.
pub fn read_request(r: &mut impl Read) -> Result<Option<Request>, ProtocolError> {
    match read_frame(r)? {
        None => Ok(None),
        Some(body) => Request::decode(&body).map(Some),
    }
}

/// Writes one response as a frame.
pub fn write_response(w: &mut impl Write, response: &Response) -> Result<(), ProtocolError> {
    write_frame(w, &response.encode())
}

/// Reads one response; `Ok(None)` on clean end-of-stream.
pub fn read_response(r: &mut impl Read) -> Result<Option<Response>, ProtocolError> {
    match read_frame(r)? {
        None => Ok(None),
        Some(body) => Response::decode(&body).map(Some),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip_and_clean_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"hello"[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b""[..]));
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF between frames");
    }

    #[test]
    fn truncated_prefix_and_body_are_typed_errors() {
        let mut r = io::Cursor::new(vec![0u8, 0]);
        assert!(matches!(read_frame(&mut r), Err(ProtocolError::Truncated { .. })));
        let mut r = io::Cursor::new(vec![0u8, 0, 0, 9, b'x']);
        assert!(matches!(read_frame(&mut r), Err(ProtocolError::Truncated { .. })));
    }

    #[test]
    fn oversized_frames_are_rejected_without_allocating() {
        let mut r = io::Cursor::new((u32::MAX).to_be_bytes().to_vec());
        assert!(matches!(read_frame(&mut r), Err(ProtocolError::Oversized { .. })));
        let body = vec![0u8; MAX_FRAME + 1];
        let mut sink = Vec::new();
        assert!(matches!(write_frame(&mut sink, &body), Err(ProtocolError::Oversized { .. })));
    }

    #[test]
    fn request_round_trips() {
        let requests = vec![
            Request::Query { values: vec![Some("a".into()), None, Some(String::new())] },
            Request::QueryBatch { probes: vec![vec![None], vec![Some("x".into())]] },
            Request::UpsertBatch { items: vec![(7, vec![Some("v".into())]), (8, vec![None])] },
            Request::RemoveBatch { ids: vec![1, 2, u64::MAX] },
            Request::Explain { values: vec![Some("p".into())], id: 42 },
            Request::SwapRules { md_text: "a[b] = a[b] -> a[c] <=> a[c]".into() },
            Request::Stats,
            Request::QueryRanked {
                values: vec![Some("p".into()), None],
                top_k: 10,
                min_score_bits: 0.5f64.to_bits(),
            },
            Request::SubmitLabels {
                items: vec![
                    (vec![Some("mark".into()), None], vec![Some("marx".into())], true),
                    (vec![None], vec![None], false),
                ],
            },
            Request::SubmitLabels { items: vec![] },
            Request::Refine { beta_bits: 1.0f64.to_bits() },
        ];
        for request in requests {
            let decoded = Request::decode(&request.encode()).unwrap();
            assert_eq!(decoded, request);
        }
    }

    #[test]
    fn response_round_trips() {
        let responses = vec![
            Response::Query(WireQuery {
                hits: vec![WireHit { id: 3, key: 1 }],
                candidates: 9,
                key_evals: 4,
                version: 2,
            }),
            Response::QueryBatch(vec![]),
            Response::UpsertBatch { replaced: vec![true, false], version: 1 },
            Response::RemoveBatch { version: 5 },
            Response::Explain {
                matched: true,
                fired_key: Some(2),
                rendered: "because".into(),
                version: 3,
            },
            Response::Explain {
                matched: false,
                fired_key: None,
                rendered: String::new(),
                version: 1,
            },
            Response::SwapRules { version: 9 },
            Response::Stats(WireStats {
                version: 2,
                epoch: 17,
                shard_records: vec![3, 0, 5],
                queries: 100,
                batch_queries: 4,
                upserts: 8,
                removes: 1,
                cache_hits: 50,
                cache_misses: 50,
                cache_invalidations: 7,
                exact_anchors: 2,
                qgram_anchors: 1,
                derived_anchors: 1,
                token_anchors: 1,
                bag_anchors: 1,
                scan_keys: 0,
                store_schema: WireSchema { name: "crm".into(), attributes: vec!["a".into()] },
                probe_schema: WireSchema { name: "orders".into(), attributes: vec!["b".into()] },
            }),
            Response::QueryRanked(WireRanked {
                hits: vec![
                    WireScoredHit { id: 3, key: 1, score_bits: 0.97f64.to_bits() },
                    WireScoredHit { id: 8, key: 0, score_bits: 0.42f64.to_bits() },
                ],
                candidates: 9,
                key_evals: 4,
                version: 2,
            }),
            Response::SubmitLabels { added: 3, total: 10, positives: 6, negatives: 4 },
            Response::Refine(WireRefinement {
                version: 4,
                pool_size: 37,
                theta_variants: 2,
                exhaustive: false,
                before_precision_bits: 0.9f64.to_bits(),
                before_recall_bits: 0.4f64.to_bits(),
                before_f1_bits: 0.55f64.to_bits(),
                after_precision_bits: 0.95f64.to_bits(),
                after_recall_bits: 0.9f64.to_bits(),
                after_f1_bits: 0.92f64.to_bits(),
                rules: vec!["credit[FN] ≈dl@0.70 billing[FN] -> …".into()],
            }),
            Response::Error { message: "unknown record #9".into() },
        ];
        for response in responses {
            let decoded = Response::decode(&response.encode()).unwrap();
            assert_eq!(decoded, response);
        }
    }

    #[test]
    fn garbage_decodes_to_typed_errors_never_panics() {
        assert!(matches!(Request::decode(&[]), Err(ProtocolError::Truncated { .. })));
        assert!(matches!(Request::decode(&[99]), Err(ProtocolError::UnknownTag { tag: 99, .. })));
        // A count claiming more elements than bytes remain.
        assert!(matches!(
            Request::decode(&[4, 0xFF, 0xFF, 0xFF, 0xFF]),
            Err(ProtocolError::Truncated { .. })
        ));
        // Valid message followed by trailing garbage.
        let mut body = Request::Stats.encode();
        body.push(0);
        assert!(matches!(Request::decode(&body), Err(ProtocolError::TrailingBytes { extra: 1 })));
        // Invalid UTF-8 in a string.
        let mut body = vec![6]; // SwapRules
        body.extend_from_slice(&2u32.to_be_bytes());
        body.extend_from_slice(&[0xC3, 0x28]);
        assert!(matches!(Request::decode(&body), Err(ProtocolError::InvalidUtf8 { .. })));
        // Refine missing its beta.
        assert!(matches!(Request::decode(&[10]), Err(ProtocolError::Truncated { .. })));
        // SubmitLabels with a polarity byte that is neither 0 nor 1.
        let mut body = vec![9];
        body.extend_from_slice(&1u32.to_be_bytes()); // one item
        body.extend_from_slice(&0u32.to_be_bytes()); // empty left values
        body.extend_from_slice(&0u32.to_be_bytes()); // empty right values
        body.push(7); // bad polarity
        assert!(matches!(Request::decode(&body), Err(ProtocolError::UnknownTag { tag: 7, .. })));
    }
}
